"""Tests for the dispersion model and network field estimation."""

import numpy as np
import pytest

from repro.analytics import (
    GaussianPlume,
    StabilityClass,
    field_uncertainty,
    interpolate_field,
)
from repro.geo import BoundingBox, GeoPoint, TRONDHEIM


def make_plume(**overrides):
    defaults = dict(
        source=TRONDHEIM,
        emission_rate_gs=10.0,
        wind_speed_ms=3.0,
        wind_direction_deg=270.0,  # westerly: plume travels east
        stack_height_m=5.0,
        stability="D",
    )
    defaults.update(overrides)
    return GaussianPlume(**defaults)


class TestStabilityClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            StabilityClass.validate("Z")

    def test_sigma_grows_with_distance(self):
        for cls in "ABCDEF":
            assert StabilityClass.sigma_y_m(cls, 2000.0) > StabilityClass.sigma_y_m(
                cls, 200.0
            )

    def test_unstable_disperses_more(self):
        assert StabilityClass.sigma_z_m("A", 1000.0) > StabilityClass.sigma_z_m(
            "F", 1000.0
        )

    def test_from_weather(self):
        assert StabilityClass.from_weather(1.0, 700.0) == "A"  # sunny, calm
        assert StabilityClass.from_weather(1.0, 0.0) == "F"  # clear night, calm
        assert StabilityClass.from_weather(6.0, 0.0) == "D"  # windy night


class TestGaussianPlume:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_plume(wind_speed_ms=0.0)
        with pytest.raises(ValueError):
            make_plume(emission_rate_gs=-1.0)
        with pytest.raises(ValueError):
            make_plume(stability="Q")

    def test_zero_upwind(self):
        plume = make_plume()
        upwind = TRONDHEIM.destination(270.0, 500.0)  # towards the wind
        assert plume.concentration_ugm3(upwind) == 0.0

    def test_positive_downwind(self):
        plume = make_plume()
        downwind = TRONDHEIM.destination(90.0, 500.0)
        assert plume.concentration_ugm3(downwind) > 0.0

    def test_centreline_decays_far_field(self):
        plume = make_plume()
        near = plume.concentration_ugm3(TRONDHEIM.destination(90.0, 500.0))
        far = plume.concentration_ugm3(TRONDHEIM.destination(90.0, 5000.0))
        assert near > far

    def test_crosswind_decay(self):
        plume = make_plume()
        on_axis = plume.concentration_ugm3(TRONDHEIM.destination(90.0, 1000.0))
        off_axis = plume.concentration_ugm3(
            TRONDHEIM.destination(90.0, 1000.0).destination(0.0, 500.0)
        )
        assert on_axis > off_axis

    def test_emission_linearity(self):
        receptor = TRONDHEIM.destination(90.0, 800.0)
        c1 = make_plume(emission_rate_gs=5.0).concentration_ugm3(receptor)
        c2 = make_plume(emission_rate_gs=10.0).concentration_ugm3(receptor)
        assert c2 == pytest.approx(2.0 * c1, rel=1e-9)

    def test_stronger_wind_dilutes(self):
        receptor = TRONDHEIM.destination(90.0, 800.0)
        calm = make_plume(wind_speed_ms=1.5).concentration_ugm3(receptor)
        windy = make_plume(wind_speed_ms=8.0).concentration_ugm3(receptor)
        assert calm > windy

    def test_stable_night_concentrates_plume(self):
        receptor = TRONDHEIM.destination(90.0, 1500.0)
        stable = make_plume(stability="F").concentration_ugm3(receptor)
        unstable = make_plume(stability="A").concentration_ugm3(receptor)
        assert stable > unstable  # poor vertical mixing keeps it near ground

    def test_footprint_grid(self):
        region = BoundingBox.around(TRONDHEIM, 3000.0)
        grid = make_plume().footprint(region, rows=12, cols=12)
        field = grid.mean_field()
        assert np.nanmax(field) > 0.0
        # East half (downwind) carries more mass than west half.
        west = np.nansum(field[:, :6])
        east = np.nansum(field[:, 6:])
        assert east > west * 5.0

    def test_max_impact_distance(self):
        plume = make_plume(emission_rate_gs=50.0, stability="F")
        d_high = plume.max_impact_distance_m(threshold_ugm3=1.0)
        d_low = plume.max_impact_distance_m(threshold_ugm3=100.0)
        assert d_high > d_low > 0.0


class TestFieldInterpolation:
    def sensors(self):
        return {
            "a": (TRONDHEIM, 60.0),
            "b": (TRONDHEIM.destination(90.0, 2000.0), 20.0),
            "c": (TRONDHEIM.destination(180.0, 2000.0), 30.0),
        }

    def region(self):
        return BoundingBox.around(TRONDHEIM, 3000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            interpolate_field({}, self.region())
        with pytest.raises(ValueError):
            interpolate_field(self.sensors(), self.region(), power=0.0)

    def test_field_bounded_by_observations_and_background(self):
        grid = interpolate_field(self.sensors(), self.region())
        field = grid.mean_field()
        assert np.nanmin(field) >= 20.0 - 1e-6
        assert np.nanmax(field) <= 60.0 + 1e-6

    def test_field_peaks_near_hot_sensor(self):
        grid = interpolate_field(self.sensors(), self.region(), rows=15, cols=15)
        hot_cell = grid.cell_of(TRONDHEIM)
        cold_cell = grid.cell_of(TRONDHEIM.destination(90.0, 2000.0))
        field = grid.mean_field()
        assert field[hot_cell] > field[cold_cell]

    def test_far_cells_near_background(self):
        grid = interpolate_field(
            self.sensors(),
            BoundingBox.around(TRONDHEIM, 10_000.0),
            rows=21,
            cols=21,
            background=30.0,
        )
        corner = grid.mean_field()[0, 0]  # ~14 km from the sensors
        assert corner == pytest.approx(30.0, abs=6.0)

    def test_uncertainty_layer(self):
        grid = field_uncertainty(self.sensors(), self.region(), rows=8, cols=8)
        field = grid.mean_field()
        assert np.nanmin(field) >= 0.0
        assert np.isfinite(field).all()

    def test_uncertainty_needs_three_sensors(self):
        with pytest.raises(ValueError):
            field_uncertainty({"a": (TRONDHEIM, 10.0)}, self.region())
