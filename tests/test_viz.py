"""Tests for rendering primitives, charts, maps, dashboards, city view."""

import json
import math

import numpy as np
import pytest

from repro.geo import GeoPoint, VEJLE
from repro.integration import generate_city_model
from repro.tsdb import Query, TSDB
from repro.viz import (
    AqiPanel,
    Chart,
    Dashboard,
    GaugePanel,
    SvgDocument,
    TextCanvas,
    TextPanel,
    TimeseriesPanel,
    attach_sensor_values,
    city_model_geojson,
    horizontal_bar,
    render_city_svg,
    render_svg_map,
    render_text_map,
    siting_suggestions,
    sparkline,
    to_geojson,
    value_color,
)


class TestPrimitives:
    def test_sparkline_shape(self):
        s = sparkline(np.array([0.0, 1.0, 2.0, 3.0]))
        assert len(s) == 4
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_sparkline_nan_blank(self):
        s = sparkline(np.array([1.0, np.nan, 2.0]))
        assert s[1] == " "

    def test_sparkline_resample(self):
        assert len(sparkline(np.arange(100.0), width=10)) == 10

    def test_sparkline_empty(self):
        assert sparkline(np.array([])) == ""

    def test_sparkline_constant(self):
        s = sparkline(np.array([5.0, 5.0]))
        assert len(set(s)) == 1

    def test_horizontal_bar(self):
        assert horizontal_bar(5.0, 10.0, width=10) == "[#####.....]"
        assert horizontal_bar(20.0, 10.0, width=4) == "[####]"
        assert horizontal_bar(1.0, 0.0, width=4) == "[....]"

    def test_canvas_clipping(self):
        c = TextCanvas(5, 3)
        c.set(100, 100, "x")  # silently clipped
        c.text(3, 1, "abcdef")
        out = c.render()
        assert "ab" in out

    def test_canvas_validation(self):
        with pytest.raises(ValueError):
            TextCanvas(0, 5)

    def test_canvas_frame_and_line(self):
        c = TextCanvas(12, 6)
        c.frame("t")
        c.line(2, 2, 9, 4)
        out = c.render()
        assert out.splitlines()[0].startswith("+")
        assert "·" in out

    def test_value_color_ramp(self):
        assert value_color(0.0, 0.0, 1.0) == "#2ecc71"
        assert value_color(1.0, 0.0, 1.0) == "#e74c3c"
        assert value_color(float("nan"), 0.0, 1.0) == "#999999"

    def test_svg_document(self):
        svg = SvgDocument(100, 50)
        svg.circle(10, 10, 3, title="a<b")
        svg.polyline([(0, 0), (10, 10)])
        svg.text(5, 5, 'say "hi"')
        out = svg.render()
        assert out.startswith("<svg")
        assert "a&lt;b" in out
        assert "&quot;hi&quot;" in out


class TestChart:
    def test_text_render_contains_extremes(self):
        chart = Chart("co2")
        chart.add("a", np.arange(10) * 60, np.linspace(400.0, 420.0, 10))
        text = chart.render_text()
        assert "420.0" in text
        assert "400.0" in text
        assert "co2" in text

    def test_empty_chart(self):
        text = Chart("empty").render_text()
        assert "(no data)" in text

    def test_misaligned_series(self):
        with pytest.raises(ValueError):
            Chart("x").add("a", np.arange(3), np.arange(4.0))

    def test_svg_render(self):
        chart = Chart("co2")
        chart.add("a", np.arange(10) * 60, np.linspace(400.0, 420.0, 10))
        svg = chart.render_svg()
        assert "<polyline" in svg

    def test_multi_series_legend(self):
        chart = Chart("multi")
        chart.add("alpha", np.arange(5), np.arange(5.0))
        chart.add("beta", np.arange(5), np.arange(5.0) * 2)
        text = chart.render_text()
        assert "alpha" in text and "beta" in text


def make_snapshot():
    base = VEJLE
    return {
        "sensors": {
            "s1": {
                "location": (base.lat, base.lon),
                "gateways": ["g1"],
                "rssi_dbm": -95.0,
                "battery_v": 3.9,
                "uplinks": 10,
                "overdue": False,
            },
            "s2": {
                "location": (base.lat + 0.01, base.lon + 0.01),
                "gateways": ["g1"],
                "rssi_dbm": -110.0,
                "battery_v": 3.4,
                "uplinks": 4,
                "overdue": True,
            },
        },
        "gateways": {
            "g1": {"location": (base.lat + 0.005, base.lon), "frames": 14,
                   "silent": False}
        },
        "overdue_sensors": ["s2"],
        "silent_gateways": [],
        "active_alarms": [],
    }


class TestNetworkMap:
    def test_text_map_markers(self):
        text = render_text_map(make_snapshot())
        assert "S" in text  # healthy sensor
        assert "!" in text  # overdue sensor
        assert "G" in text  # gateway
        assert "overdue=1" in text

    def test_text_map_empty(self):
        text = render_text_map({"sensors": {}, "gateways": {}})
        assert "no devices" in text

    def test_svg_map(self):
        svg = render_svg_map(make_snapshot())
        assert "<circle" in svg
        assert "<rect" in svg
        assert "<line" in svg

    def test_geojson_features(self):
        geo = to_geojson(make_snapshot())
        kinds = [f["properties"]["kind"] for f in geo["features"]]
        assert kinds.count("sensor") == 2
        assert kinds.count("gateway") == 1
        assert kinds.count("link") == 2
        json.dumps(geo)  # serializable


@pytest.fixture
def db_with_data():
    db = TSDB()
    for i in range(24):
        ts = i * 3600
        for node in ("n1", "n2"):
            tags = {"node": node, "city": "vejle"}
            db.put("air.co2.ppm", ts, 400.0 + i + (5 if node == "n2" else 0), tags)
            db.put("air.no2.ugm3", ts, 30.0 + i, tags)
            db.put("air.pm10.ugm3", ts, 20.0, tags)
            db.put("air.pm25.ugm3", ts, 10.0, tags)
            db.put("node.battery.v", ts, 3.9, tags)
    return db


class TestDashboard:
    def test_timeseries_panel(self, db_with_data):
        panel = TimeseriesPanel(
            "co2", Query("air.co2.ppm", 0, 23 * 3600, downsample="1h-avg")
        )
        text = panel.render_text(db_with_data)
        assert "co2" in text

    def test_gauge_panel(self, db_with_data):
        panel = GaugePanel("battery", "node.battery.v", vmax=4.2, unit="V")
        text = panel.render_text(db_with_data)
        assert "n1" in text and "n2" in text
        assert "3.9" in text

    def test_gauge_panel_empty(self):
        panel = GaugePanel("x", "missing.metric")
        assert "(no data)" in panel.render_text(TSDB())

    def test_aqi_panel(self, db_with_data):
        panel = AqiPanel("aqi", city="vejle")
        tiles = panel.compute(db_with_data)
        assert set(tiles) == {"n1", "n2"}
        assert tiles["n1"]["dominant"] == "no2_ugm3"
        text = panel.render_text(db_with_data)
        assert "CAQI" in text

    def test_text_panel(self, db_with_data):
        panel = TextPanel("stats", lambda db: f"metrics={len(db.metrics())}")
        assert "metrics=5" in panel.render_text(db_with_data)

    def test_dashboard_text_and_html(self, db_with_data):
        dash = (
            Dashboard("Air quality", db_with_data)
            .add(AqiPanel("aqi", city="vejle"))
            .add(GaugePanel("battery", "node.battery.v", vmax=4.2))
        )
        text = dash.render_text()
        assert "### Air quality ###" in text
        html = dash.render_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "Air quality" in html


class TestCityView:
    def model(self):
        return generate_city_model("vejle", VEJLE, seed=3, blocks=4,
                                   buildings_per_block=3)

    def sensors(self):
        return {
            "s1": (VEJLE, 55.0),
            "s2": (VEJLE.destination(90.0, 300.0), 20.0),
        }

    def test_attach_sensor_values_idw(self):
        levels = attach_sensor_values(self.model(), self.sensors())
        finite = [v for v in levels.values() if math.isfinite(v)]
        assert finite
        assert all(15.0 <= v <= 60.0 for v in finite)

    def test_attach_no_sensors_all_nan(self):
        levels = attach_sensor_values(self.model(), {})
        assert all(math.isnan(v) for v in levels.values())

    def test_render_city_svg(self):
        svg = render_city_svg(self.model(), self.sensors())
        assert "<polygon" in svg
        assert "<circle" in svg
        assert "s1" in svg

    def test_city_geojson(self):
        geo = city_model_geojson(self.model(), self.sensors())
        kinds = {f["properties"]["kind"] for f in geo["features"]}
        assert kinds == {"building", "sensor"}
        buildings = [
            f for f in geo["features"] if f["properties"]["kind"] == "building"
        ]
        assert all("height_m" in f["properties"] for f in buildings)
        json.dumps(geo)

    def test_siting_suggestions(self):
        model = self.model()
        existing = [VEJLE]
        sites = siting_suggestions(model, existing, n=2, min_separation_m=300.0)
        assert len(sites) == 2
        for site in sites:
            assert site.distance_to(VEJLE) >= 300.0
        assert sites[0].distance_to(sites[1]) >= 300.0

    def test_siting_respects_exhaustion(self):
        model = generate_city_model("tiny", VEJLE, seed=3, blocks=1,
                                    buildings_per_block=1)
        sites = siting_suggestions(model, [VEJLE], n=5, min_separation_m=10_000.0)
        assert sites == []
