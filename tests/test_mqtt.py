"""Tests for the in-process MQTT broker."""

import numpy as np
import pytest

from repro.mqtt import (
    Broker,
    InvalidTopic,
    Message,
    MqttError,
    join,
    topic_matches,
    validate_filter,
    validate_topic,
)


class TestTopicValidation:
    def test_publish_topic_rejects_wildcards(self):
        with pytest.raises(InvalidTopic):
            validate_topic("a/+/b")
        with pytest.raises(InvalidTopic):
            validate_topic("a/#")

    def test_empty_and_nul(self):
        for bad in ("", "a\x00b"):
            with pytest.raises(InvalidTopic):
                validate_topic(bad)

    def test_filter_hash_must_be_last(self):
        validate_filter("a/#")
        with pytest.raises(InvalidTopic):
            validate_filter("a/#/b")

    def test_filter_wildcard_must_be_whole_level(self):
        with pytest.raises(InvalidTopic):
            validate_filter("a/b+/c")
        with pytest.raises(InvalidTopic):
            validate_filter("a/b#")

    def test_join(self):
        assert join("ctt", "uplink", "dev-1") == "ctt/uplink/dev-1"


class TestTopicMatching:
    @pytest.mark.parametrize(
        "filter_,topic,expected",
        [
            ("a/b/c", "a/b/c", True),
            ("a/b/c", "a/b/d", False),
            ("a/+/c", "a/b/c", True),
            ("a/+/c", "a/b/d", False),
            ("a/#", "a/b/c/d", True),
            ("a/#", "a", True),  # '#' matches the parent level
            ("#", "a/b", True),
            ("+", "a", True),
            ("+", "a/b", False),
            ("a/+", "a", False),
            ("#", "$SYS/health", False),  # $-topics hidden from wildcards
            ("$SYS/#", "$SYS/health", True),
        ],
    )
    def test_cases(self, filter_, topic, expected):
        assert topic_matches(filter_, topic) is expected


class TestBrokerBasics:
    def test_publish_subscribe(self):
        broker = Broker()
        client = broker.connect("c1")
        got = []
        client.subscribe("sensors/+/up", got.append)
        broker.publish("sensors/dev1/up", b"hello")
        assert len(got) == 1
        assert got[0].payload == b"hello"
        assert got[0].topic == "sensors/dev1/up"

    def test_string_payload_encoded(self):
        broker = Broker()
        client = broker.connect("c1")
        got = []
        client.subscribe("t", got.append)
        client.publish("t", "text")
        assert got[0].text() == "text"

    def test_no_delivery_after_unsubscribe(self):
        broker = Broker()
        client = broker.connect("c1")
        got = []
        client.subscribe("t", got.append)
        assert client.unsubscribe("t")
        assert not client.unsubscribe("t")
        broker.publish("t", b"x")
        assert got == []

    def test_disconnected_client_not_delivered(self):
        broker = Broker()
        client = broker.connect("c1")
        got = []
        client.subscribe("t", got.append)
        client.disconnect()
        broker.publish("t", b"x")
        assert got == []

    def test_publish_on_disconnected_client_raises(self):
        broker = Broker()
        client = broker.connect("c1")
        client.disconnect()
        with pytest.raises(MqttError):
            client.publish("t", b"x")

    def test_deliver_once_per_client_even_with_overlapping_subs(self):
        broker = Broker()
        client = broker.connect("c1")
        got = []
        client.subscribe("a/#", got.append)
        client.subscribe("a/+", got.append)
        broker.publish("a/b", b"x")
        assert len(got) == 1

    def test_qos_validation(self):
        broker = Broker()
        with pytest.raises(MqttError):
            broker.publish("t", b"x", qos=2)

    def test_stats(self):
        broker = Broker()
        broker.connect("c1")
        broker.publish("t", b"x")
        stats = broker.stats()
        assert stats["published"] == 1
        assert stats["connected"] == 1


class TestRetained:
    def test_retained_replay_on_subscribe(self):
        broker = Broker()
        broker.publish("status/node1", b"online", retain=True)
        client = broker.connect("c1")
        got = []
        client.subscribe("status/#", got.append)
        assert len(got) == 1
        assert got[0].retain

    def test_retained_overwrite(self):
        broker = Broker()
        broker.publish("s", b"v1", retain=True)
        broker.publish("s", b"v2", retain=True)
        assert broker.retained_for("s")[0].payload == b"v2"

    def test_empty_payload_clears_retained(self):
        broker = Broker()
        broker.publish("s", b"v1", retain=True)
        broker.publish("s", b"", retain=True)
        assert broker.retained_for("s") == []


class TestWills:
    def test_will_fires_on_ungraceful_disconnect(self):
        broker = Broker()
        watcher = broker.connect("watcher")
        got = []
        watcher.subscribe("wills/#", got.append)
        broker.connect("dev", will=Message("wills/dev", b"gone"))
        broker.disconnect("dev", graceful=False)
        assert [m.payload for m in got] == [b"gone"]

    def test_no_will_on_graceful_disconnect(self):
        broker = Broker()
        watcher = broker.connect("watcher")
        got = []
        watcher.subscribe("wills/#", got.append)
        broker.connect("dev", will=Message("wills/dev", b"gone"))
        broker.disconnect("dev", graceful=True)
        assert got == []


class TestQos1Redelivery:
    def test_lossy_client_eventually_gets_qos1(self):
        broker = Broker(rng=np.random.default_rng(42))
        client = broker.connect("lossy", drop_probability=0.9)
        got = []
        client.subscribe("t", got.append, qos=1)
        broker.publish("t", b"important", qos=1)
        # Retry until the message lands (bounded to prove termination).
        for _ in range(200):
            if got:
                break
            broker.redeliver("lossy")
        assert len(got) == 1
        assert client.stats["inflight"] == 0

    def test_qos0_lost_forever(self):
        broker = Broker(rng=np.random.default_rng(0))
        client = broker.connect("lossy", drop_probability=1.0 - 1e-12)
        got = []
        client.subscribe("t", got.append, qos=0)
        broker.publish("t", b"meh", qos=0)
        broker.redeliver("lossy")
        assert got == []
        assert client.stats["dropped"] >= 1

    def test_effective_qos_is_min_of_pub_and_sub(self):
        broker = Broker(rng=np.random.default_rng(1))
        client = broker.connect("lossy", drop_probability=0.999999)
        got = []
        client.subscribe("t", got.append, qos=0)  # subscriber only wants QoS 0
        broker.publish("t", b"x", qos=1)
        assert client.stats["inflight"] == 0  # no redelivery state kept

    def test_persistent_session_keeps_subscriptions(self):
        broker = Broker()
        client = broker.connect("c1", clean_session=False)
        got = []
        client.subscribe("t", got.append)
        broker.disconnect("c1")
        broker.publish("t", b"missed")  # offline: not delivered, not queued (sub QoS 0)
        client2 = broker.connect("c1", clean_session=False)
        broker.publish("t", b"online again")
        assert [m.payload for m in got] == [b"online again"]
