"""Tests for repro.tsdb.model and repro.tsdb.series."""

import numpy as np
import pytest

from repro.tsdb import DataPoint, InvalidName, SeriesKey, SeriesStore, merge_slices
from repro.tsdb.model import validate_name


class TestValidateName:
    def test_accepts_typical_metric_names(self):
        for name in ("air.co2.ppm", "node-1", "a/b", "T_0"):
            assert validate_name(name) == name

    def test_rejects_bad_names(self):
        for bad in ("", " ", "a b", "héllo", ".leading", None, 42):
            with pytest.raises(InvalidName):
                validate_name(bad)  # type: ignore[arg-type]


class TestSeriesKey:
    def test_tags_sorted_canonically(self):
        k1 = SeriesKey.make("m", {"b": "2", "a": "1"})
        k2 = SeriesKey.make("m", {"a": "1", "b": "2"})
        assert k1 == k2
        assert hash(k1) == hash(k2)

    def test_str_representation(self):
        k = SeriesKey.make("air.co2.ppm", {"node": "ctt-07", "city": "trondheim"})
        assert str(k) == "air.co2.ppm{city=trondheim,node=ctt-07}"
        assert str(SeriesKey.make("m")) == "m"

    def test_tag_lookup(self):
        k = SeriesKey.make("m", {"node": "x"})
        assert k.tag("node") == "x"
        assert k.tag("missing") is None
        assert k.tag("missing", "dflt") == "dflt"

    def test_matches_exact(self):
        k = SeriesKey.make("m", {"node": "x", "city": "trondheim"})
        assert k.matches({"node": "x"})
        assert not k.matches({"node": "y"})

    def test_matches_wildcard_requires_presence(self):
        k = SeriesKey.make("m", {"node": "x"})
        assert k.matches({"node": "*"})
        assert not k.matches({"city": "*"})

    def test_matches_alternation(self):
        k = SeriesKey.make("m", {"node": "x"})
        assert k.matches({"node": "x|y"})
        assert not k.matches({"node": "y|z"})

    def test_matches_empty_filter(self):
        assert SeriesKey.make("m", {"a": "1"}).matches({})

    def test_invalid_tag_key(self):
        with pytest.raises(InvalidName):
            SeriesKey.make("m", {"bad key": "v"})


class TestDataPoint:
    def test_make_coerces_types(self):
        p = DataPoint.make("m", 100.9, "3", {"a": "1"})  # type: ignore[arg-type]
        assert p.timestamp == 100
        assert p.value == 3.0


class TestSeriesStore:
    def test_in_order_append_and_scan(self):
        s = SeriesStore()
        for i in range(10):
            s.append(i * 10, float(i))
        sl = s.scan()
        assert len(sl) == 10
        assert sl.timestamps.tolist() == [i * 10 for i in range(10)]

    def test_out_of_order_sorted_on_scan(self):
        s = SeriesStore()
        s.append(30, 3.0)
        s.append(10, 1.0)
        s.append(20, 2.0)
        sl = s.scan()
        assert sl.timestamps.tolist() == [10, 20, 30]
        assert sl.values.tolist() == [1.0, 2.0, 3.0]

    def test_duplicate_timestamp_last_write_wins(self):
        s = SeriesStore()
        s.append(10, 1.0)
        s.append(10, 99.0)
        sl = s.scan()
        assert len(sl) == 1
        assert sl.values[0] == 99.0

    def test_duplicate_across_compactions(self):
        s = SeriesStore()
        s.append(10, 1.0)
        _ = s.scan()  # force compaction
        s.append(10, 2.0)
        assert s.scan().values.tolist() == [2.0]

    def test_range_scan_inclusive(self):
        s = SeriesStore()
        for t in (10, 20, 30, 40):
            s.append(t, float(t))
        sl = s.scan(20, 30)
        assert sl.timestamps.tolist() == [20, 30]

    def test_scan_empty_range(self):
        s = SeriesStore()
        s.append(10, 1.0)
        assert s.scan(100, 200).is_empty()

    def test_latest(self):
        s = SeriesStore()
        assert s.latest() is None
        s.append(10, 1.0)
        s.append(5, 0.5)  # out of order; latest is still t=10
        assert s.latest() == (10, 1.0)

    def test_len_and_growth(self):
        s = SeriesStore()
        n = 3000  # crosses the initial capacity and tail-compaction limits
        for i in range(n):
            s.append(i, float(i))
        assert len(s) == n

    def test_delete_before(self):
        s = SeriesStore()
        for t in range(0, 100, 10):
            s.append(t, float(t))
        dropped = s.delete_before(50)
        assert dropped == 5
        assert s.scan().timestamps.tolist() == [50, 60, 70, 80, 90]
        assert s.delete_before(0) == 0

    def test_first_timestamp(self):
        s = SeriesStore()
        assert s.first_timestamp() is None
        s.append(42, 1.0)
        assert s.first_timestamp() == 42


class TestMergeSlices:
    def test_empty(self):
        assert merge_slices([]).is_empty()

    def test_union_keeps_later_slice_on_ties(self):
        s1 = SeriesStore()
        s1.append(10, 1.0)
        s1.append(20, 2.0)
        s2 = SeriesStore()
        s2.append(20, 99.0)
        s2.append(30, 3.0)
        merged = merge_slices([s1.scan(), s2.scan()])
        assert merged.timestamps.tolist() == [10, 20, 30]
        assert merged.values.tolist() == [1.0, 99.0, 3.0]
