"""Tests for sensor channels, power, sampling policies, faults, and nodes."""

import datetime as dt

import numpy as np
import pytest

from repro.geo import TRONDHEIM
from repro.lorawan import (
    Gateway,
    LoraDevice,
    NetworkServer,
    PropagationModel,
    RadioPlane,
    decode_measurements,
)
from repro.sensors import (
    Battery,
    BatteryAdaptive,
    Channel,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FixedInterval,
    LOW_COST_SPECS,
    PowerSpec,
    REFERENCE_SPECS,
    SensorNode,
    UrbanEnvironment,
    random_fault_plan,
    soc_to_voltage,
    voltage_to_soc,
)
from repro.simclock import DAY, HOUR, Scheduler, SimClock, from_datetime


def make_env(seed=7):
    return UrbanEnvironment("trondheim", TRONDHEIM, seed=seed)


def make_node(
    env=None,
    seed=1,
    policy=None,
    fault_plan=None,
    initial_soc=0.9,
    power_spec=None,
    start=0,
):
    env = env or make_env()
    plane = RadioPlane(
        PropagationModel(shadowing_sigma_db=0.0), np.random.default_rng(seed)
    )
    plane.add_gateway(Gateway("gw-0", TRONDHEIM.destination(0.0, 400.0)))
    device = LoraDevice("dev-1", TRONDHEIM, plane, sf=9)
    return SensorNode(
        "ctt-01",
        TRONDHEIM,
        env,
        device,
        rng=np.random.default_rng(seed),
        policy=policy,
        fault_plan=fault_plan,
        initial_soc=initial_soc,
        power_spec=power_spec,
        start_time=start,
    )


class TestBattery:
    def test_voltage_curve_monotone(self):
        socs = np.linspace(0.0, 1.0, 50)
        volts = [soc_to_voltage(s) for s in socs]
        assert volts == sorted(volts)
        assert volts[0] == 3.0
        assert volts[-1] == 4.2

    def test_voltage_soc_round_trip(self):
        for soc in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert voltage_to_soc(soc_to_voltage(soc)) == pytest.approx(soc, abs=0.01)

    def test_initial_soc_validation(self):
        with pytest.raises(ValueError):
            Battery(PowerSpec(), initial_soc=1.5)

    def test_sleep_drain(self):
        b = Battery(PowerSpec(), initial_soc=1.0)
        before = b.soc
        b.discharge_sleep(DAY)
        assert b.soc < before

    def test_charging_caps_at_full(self):
        b = Battery(PowerSpec(), initial_soc=0.99)
        gained = b.charge_from_irradiance(1000.0, 10 * HOUR)
        assert b.soc == 1.0
        assert gained < PowerSpec().capacity_mas * 0.02

    def test_discharge_floors_at_zero(self):
        b = Battery(PowerSpec(), initial_soc=0.001)
        for _ in range(100):
            b.discharge_sample()
        assert b.soc == 0.0
        assert b.is_empty

    def test_thresholds(self):
        spec = PowerSpec()
        assert Battery(spec, initial_soc=0.2).is_low
        assert not Battery(spec, initial_soc=0.5).is_low
        assert Battery(spec, initial_soc=0.05).is_critical

    def test_negative_durations_rejected(self):
        b = Battery(PowerSpec())
        with pytest.raises(ValueError):
            b.discharge_sleep(-1)
        with pytest.raises(ValueError):
            b.charge_from_irradiance(100.0, -1)

    def test_idle_days_remaining(self):
        b = Battery(PowerSpec(), initial_soc=1.0)
        # 2000 mAh at 0.08 mA -> ~1040 days.
        assert b.idle_days_remaining() == pytest.approx(1041.7, rel=0.01)


class TestChannels:
    def test_reference_much_cleaner_than_low_cost(self):
        rng = np.random.default_rng(0)
        low = Channel(LOW_COST_SPECS["co2_ppm"], np.random.default_rng(1))
        ref = Channel(REFERENCE_SPECS["co2_ppm"], np.random.default_rng(1))
        truth = 400.0
        low_err = np.mean(
            [abs(low.measure(truth, 0.0) - truth) for _ in range(200)]
        )
        ref_err = np.mean(
            [abs(ref.measure(truth, 0.0) - truth) for _ in range(200)]
        )
        assert ref_err < low_err / 3.0

    def test_drift_grows_with_time(self):
        ch = Channel(LOW_COST_SPECS["co2_ppm"], np.random.default_rng(3))
        early = np.mean([ch.measure(400.0, 0.0) for _ in range(300)])
        late = np.mean([ch.measure(400.0, 365.0) for _ in range(300)])
        assert abs(late - early) == pytest.approx(ch.drift_rate * 365.0, rel=0.3)

    def test_saturation(self):
        ch = Channel(LOW_COST_SPECS["co2_ppm"], np.random.default_rng(4))
        assert ch.measure(1e9, 0.0) == 5000.0
        assert ch.measure(-1e9, 0.0) == 0.0

    def test_quantization(self):
        ch = Channel(LOW_COST_SPECS["co2_ppm"], np.random.default_rng(5))
        reading = ch.measure(412.3456, 0.0)
        assert reading == round(reading)  # 1 ppm resolution

    def test_unit_to_unit_spread(self):
        a = Channel(LOW_COST_SPECS["co2_ppm"], np.random.default_rng(10))
        b = Channel(LOW_COST_SPECS["co2_ppm"], np.random.default_rng(11))
        assert a.gain != b.gain


class TestSamplingPolicies:
    def test_fixed(self):
        policy = FixedInterval(300)
        assert policy.next_interval(Battery(PowerSpec(), 0.05)) == 300
        assert "fixed" in policy.describe()

    def test_adaptive_slows_down_when_low(self):
        policy = BatteryAdaptive(base_interval_s=300)
        spec = PowerSpec()
        assert policy.next_interval(Battery(spec, 0.9)) == 300
        assert policy.next_interval(Battery(spec, 0.2)) == 900
        assert policy.next_interval(Battery(spec, 0.05)) == 3600


class TestFaults:
    def test_event_activity_window(self):
        e = FaultEvent(FaultKind.TRANSIENT_DROPOUT, start=100, duration=50)
        assert not e.active_at(99)
        assert e.active_at(100)
        assert e.active_at(149)
        assert not e.active_at(150)

    def test_permanent_has_no_end(self):
        e = FaultEvent(FaultKind.PERMANENT_DEATH, start=100)
        assert e.end is None
        assert e.active_at(10**9)

    def test_plan_queries(self):
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.TRANSIENT_DROPOUT, 100, 50),
                FaultEvent(FaultKind.DECAY, 0, channel="co2_ppm"),
            ]
        )
        assert plan.is_dropped_out(120)
        assert not plan.is_dropped_out(200)
        assert not plan.is_dead(120)
        assert plan.channel_faults(50, "co2_ppm")
        assert not plan.channel_faults(50, "no2_ugm3")

    def test_random_plan_deterministic(self):
        p1 = random_fault_plan(np.random.default_rng(5), 0, 7 * DAY)
        p2 = random_fault_plan(np.random.default_rng(5), 0, 7 * DAY)
        assert [(e.kind, e.start) for e in p1.events] == [
            (e.kind, e.start) for e in p2.events
        ]

    def test_random_plan_horizon_validation(self):
        with pytest.raises(ValueError):
            random_fault_plan(np.random.default_rng(0), 100, 50)


class TestSensorNode:
    def test_sample_and_transmit_delivers(self):
        node = make_node()
        result = node.sample_and_transmit(now=0)
        assert result is not None
        assert result.delivered
        assert node.stats.samples == 1
        assert node.stats.delivered == 1

    def test_payload_decodes_to_sane_values(self):
        node = make_node()
        result = node.sample_and_transmit(now=0)
        m = decode_measurements(result.uplink.payload)
        assert 380.0 <= m.co2_ppm <= 600.0
        assert 3.0 <= m.battery_v <= 4.2
        assert m.sequence == 0

    def test_scheduled_loop_five_minute_cadence(self):
        sched = Scheduler(SimClock(start=0))
        node = make_node(policy=FixedInterval(300))
        node.schedule(sched, phase_s=0)
        sched.run_until(3600)
        assert node.stats.samples == 12

    def test_dropout_skips_transmission_but_samples(self):
        plan = FaultPlan([FaultEvent(FaultKind.TRANSIENT_DROPOUT, 0, 10_000)])
        node = make_node(fault_plan=plan)
        result = node.sample_and_transmit(now=100)
        assert result is None
        assert node.stats.samples == 1
        assert node.stats.dropouts_skipped == 1

    def test_permanent_death_stops_the_loop(self):
        plan = FaultPlan([FaultEvent(FaultKind.PERMANENT_DEATH, 1000)])
        sched = Scheduler(SimClock(start=0))
        node = make_node(fault_plan=plan, policy=FixedInterval(300))
        node.schedule(sched, phase_s=0)
        sched.run_until(DAY)
        assert not node.alive
        assert node.stats.samples == 3  # t=300, 600, 900

    def test_battery_depletes_without_sun(self):
        """A node sampling aggressively in polar night must brown out."""
        env = make_env()
        # January in Trondheim: almost no solar input.
        start = from_datetime(dt.datetime(2017, 1, 5))
        spec = PowerSpec(battery_capacity_mah=60.0)  # tiny battery
        sched = Scheduler(SimClock(start=start))
        node = make_node(
            env=env, power_spec=spec, policy=FixedInterval(300), start=start,
            initial_soc=0.5,
        )
        node._last_wake = start
        node.schedule(sched, phase_s=0)
        sched.run_until(start + 3 * DAY)
        assert node.stats.brownouts > 0

    def test_adaptive_policy_reduces_cadence_when_starved(self):
        env = make_env()
        start = from_datetime(dt.datetime(2017, 1, 5))
        spec = PowerSpec(battery_capacity_mah=150.0)
        sched = Scheduler(SimClock(start=start))
        adaptive = make_node(
            env=env, power_spec=spec, policy=BatteryAdaptive(300), start=start,
            initial_soc=0.4, seed=2,
        )
        fixed = make_node(
            env=env, power_spec=spec, policy=FixedInterval(300), start=start,
            initial_soc=0.4, seed=2,
        )
        adaptive._last_wake = start
        fixed._last_wake = start
        adaptive.schedule(sched, phase_s=0)
        fixed.schedule(sched, phase_s=30)
        sched.run_until(start + 2 * DAY)
        # The adaptive node stretches its interval, so it samples less...
        assert adaptive.stats.samples < fixed.stats.samples
        # ...and survives with fewer brown-outs.
        assert adaptive.stats.brownouts <= fixed.stats.brownouts

    def test_observer_called(self):
        node = make_node()
        calls = []
        node.on_transmit(lambda n, r, t: calls.append((n.node_id, t)))
        node.sample_and_transmit(now=42)
        assert calls == [("ctt-01", 42)]

    def test_stuck_channel_repeats_reading(self):
        plan = FaultPlan(
            [FaultEvent(FaultKind.STUCK_VALUE, 50, channel="co2_ppm")]
        )
        node = make_node(fault_plan=plan)
        first = node.read_channels(0)  # healthy baseline
        stuck1 = node.read_channels(100)
        stuck2 = node.read_channels(200)
        assert stuck1["co2_ppm"] == first["co2_ppm"]
        assert stuck2["co2_ppm"] == stuck1["co2_ppm"]
        assert stuck2["no2_ugm3"] != stuck1["no2_ugm3"]

    def test_end_to_end_into_network_server(self):
        node = make_node()
        ns = NetworkServer()
        received = []
        ns.on_uplink(received.append)
        node.on_transmit(
            lambda n, result, now: result.uplink
            and ns.ingest(result.uplink, result.receptions, now)
        )
        node.sample_and_transmit(now=0)
        assert len(received) == 1
        assert received[0].uplink.dev_eui == "dev-1"
