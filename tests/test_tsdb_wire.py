"""Round-trip tests for the versioned JSON wire codec.

Requests must decode back to the queries that encoded them (hypothesis
over the whole Query parameter space), responses must carry every
timestamp/value bit-exactly through JSON text (floats round-trip via
shortest-repr; NaN travels as null), and the strict version/field
checking must reject drift loudly.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb import (
    Query,
    RemoteQueryError,
    TSDB,
    WIRE_VERSION,
    WireError,
    expr,
    handle_request,
    select,
)
from repro.tsdb import wire

names = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._\-]{0,8}", fullmatch=True)
tag_values = st.one_of(
    names,
    st.just("*"),
    st.builds(lambda a, b: f"{a}|{b}", names, names),
)


@st.composite
def queries(draw):
    start = draw(st.integers(0, 2**40))
    return Query(
        metric=draw(names),
        start=start,
        end=start + draw(st.integers(0, 2**32)),
        tags=draw(st.dictionaries(names, tag_values, max_size=3)),
        aggregator=draw(st.sampled_from(
            ("avg", "sum", "min", "max", "count", "dev", "p95", "median"))),
        downsample=draw(st.one_of(
            st.none(),
            st.builds(
                lambda n, u, a, f: f"{n}{u}-{a}{f}",
                st.integers(1, 90), st.sampled_from("smhd"),
                st.sampled_from(("avg", "max", "sum", "count")),
                st.sampled_from(("", "-nan", "-zero", "-previous", "-linear")),
            ),
        )),
        rate=draw(st.booleans()),
        group_by=draw(st.lists(names, max_size=2, unique=True).map(tuple)),
    )


def assert_same_query(a: Query, b: Query):
    assert a.metric == b.metric
    assert (a.start, a.end) == (b.start, b.end)
    assert dict(a.tags) == dict(b.tags)
    assert a.aggregator == b.aggregator
    assert a.parsed_downsample() == b.parsed_downsample()
    assert a.rate == b.rate
    assert tuple(sorted(a.group_by)) == tuple(sorted(b.group_by))


@settings(max_examples=100, deadline=None)
@given(qs=st.lists(queries(), max_size=4))
def test_request_round_trip(qs):
    text = wire.request_to_json(qs)
    decoded = wire.decode_request(text)
    assert len(decoded) == len(qs)
    for a, b in zip(qs, decoded):
        assert_same_query(a, b)


@settings(max_examples=50, deadline=None)
@given(q=queries(), formula_ops=st.sampled_from(("a - b", "a / b", "-a + 2")))
def test_expr_request_round_trip(q, formula_ops):
    names_used = {"a - b": ("a", "b"), "a / b": ("a", "b"), "-a + 2": ("a",)}
    e = expr(formula_ops, **{name: q for name in names_used[formula_ops]})
    (decoded,) = wire.decode_request(wire.request_to_json([e]))
    assert decoded.formula == e.formula
    for (na, qa), (nb, qb) in zip(e.operands, decoded.operands):
        assert na == nb
        assert_same_query(qa, qb)


@settings(max_examples=50, deadline=None)
@given(
    ts=st.lists(st.integers(0, 2**40), min_size=0, max_size=30, unique=True),
    data=st.data(),
)
def test_response_value_round_trip(ts, data):
    """Every float bit (including NaN and ±inf) survives JSON text."""
    values = data.draw(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=len(ts), max_size=len(ts),
        )
    )
    db = TSDB()
    if ts:
        db.put_series("m", np.array(sorted(ts), np.int64),
                      np.array(values, np.float64))
    res = db.run_many([Query("m", 0, 2**40)])
    text = wire.response_to_json(res)
    (decoded,) = wire.decode_response(text)
    (got,) = decoded.series
    want = res[0].single()
    assert np.array_equal(got.timestamps, want.timestamps)
    assert np.array_equal(got.values, want.values, equal_nan=True)
    assert decoded.scanned_points == res[0].scanned_points


@pytest.fixture()
def db():
    db = TSDB()
    for i in range(12):
        db.put("air.co2.ppm", i * 300, 400.0 + i,
               {"node": "a", "city": "trondheim"})
        db.put("air.co2.ppm", i * 300, 410.0 + i,
               {"node": "b", "city": "trondheim"})
    return db


class TestHandleRequest:
    def test_end_to_end_equals_run_many(self, db):
        qs = [
            Query("air.co2.ppm", 0, 4000, downsample="10m-avg"),
            Query("air.co2.ppm", 0, 4000, group_by=("node",)),
        ]
        response = handle_request(db, wire.request_to_json(qs))
        direct = wire.encode_response(db.run_many(qs))
        assert response == direct
        # and the whole response survives a JSON round trip
        assert json.loads(json.dumps(response)) == response

    def test_expression_over_the_wire(self, db):
        request = {
            "version": WIRE_VERSION,
            "queries": [{
                "expr": "a - b",
                "operands": {
                    "a": {"metric": "air.co2.ppm", "start": 0, "end": 4000,
                          "tags": {"node": "a"}},
                    "b": {"metric": "air.co2.ppm", "start": 0, "end": 4000,
                          "tags": {"node": "b"}},
                },
            }],
        }
        response = handle_request(db, request)
        (entry,) = response["results"]
        assert entry["expr"] == "a - b"
        assert all(v == -10.0 for v in entry["series"][0]["dps"].values())

    def test_nan_encodes_as_null(self, db):
        request = wire.encode_request(
            [Query("air.co2.ppm", 0, 7200, downsample="10m-avg-nan")]
        )
        response = handle_request(db, request)
        dps = response["results"][0]["series"][0]["dps"]
        assert None in dps.values()  # the gap buckets
        (decoded,) = wire.decode_response(response)
        assert math.isnan(decoded.series[0].values[-1])


class TestStrictness:
    def test_unknown_version_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request({"version": 99, "queries": []})

    def test_missing_version_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request({"queries": []})

    def test_unknown_query_field_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request({
                "version": WIRE_VERSION,
                "queries": [{"metric": "m", "start": 0, "end": 1,
                             "downsampleX": "5m-avg"}],
            })

    def test_missing_required_field_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request(
                {"version": WIRE_VERSION, "queries": [{"metric": "m"}]}
            )

    def test_bad_json_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request("{not json")

    def test_malformed_query_contents_rejected(self):
        for bad in (
            {"metric": "", "start": 0, "end": 1},
            {"metric": "m", "start": 5, "end": 1},
            {"metric": "m", "start": 0, "end": 1, "aggregator": "nope"},
            {"metric": "m", "start": 0, "end": 1, "downsample": "bogus"},
            {"metric": "m", "start": "abc", "end": 1},
            {"metric": "m", "start": 0, "end": [1]},
        ):
            with pytest.raises(WireError):
                wire.decode_request(
                    {"version": WIRE_VERSION, "queries": [bad]}
                )

    def test_malformed_dps_rejected(self):
        bad = {"version": WIRE_VERSION, "results": [
            {"series": [{"metric": "m", "tags": {}, "dps": {"abc": 1.0}}],
             "scannedPoints": 0},
        ]}
        with pytest.raises(WireError):
            wire.decode_response(bad)

    def test_nested_expressions_rejected(self):
        inner = {"expr": "a", "operands": {
            "a": {"metric": "m", "start": 0, "end": 1}}}
        with pytest.raises(WireError):
            wire.decode_request({
                "version": WIRE_VERSION,
                "queries": [{"expr": "x + 1", "operands": {"x": inner}}],
            })

    def test_unsafe_wire_formula_rejected(self):
        with pytest.raises(WireError):
            wire.decode_request({
                "version": WIRE_VERSION,
                "queries": [{
                    "expr": "__import__('os').system('true')",
                    "operands": {"a": {"metric": "m", "start": 0, "end": 1}},
                }],
            })

    def test_builders_encode_like_their_query(self):
        b = select("m").range(0, 100).where(node="a").downsample("5m-avg")
        assert wire.encode_query(b) == wire.encode_query(b.build())

    def test_boolean_timestamps_rejected(self):
        """``True`` is an ``int`` to Python but not to the wire format."""
        for bad in (
            {"metric": "m", "start": True, "end": 10},
            {"metric": "m", "start": 0, "end": False},
        ):
            with pytest.raises(WireError, match="integer timestamp"):
                wire.decode_request(
                    {"version": WIRE_VERSION, "queries": [bad]}
                )

    def test_non_integral_timestamps_rejected(self):
        with pytest.raises(WireError, match="integer timestamp"):
            wire.decode_request({
                "version": WIRE_VERSION,
                "queries": [{"metric": "m", "start": 0.5, "end": 10}],
            })

    def test_integral_float_timestamps_accepted(self):
        """JSON writers that emit ``100.0`` for 100 still interoperate."""
        (q,) = wire.decode_request({
            "version": WIRE_VERSION,
            "queries": [{"metric": "m", "start": 100.0, "end": 2.0e3}],
        })
        assert (q.start, q.end) == (100, 2000)
        assert isinstance(q.start, int) and isinstance(q.end, int)


class TestInfinityEncoding:
    """±inf travels as explicit strings; NaN as null; never bare tokens."""

    def _db_with(self, *values):
        db = TSDB()
        for i, v in enumerate(values):
            db.put("m", i * 10, v, {"node": "a"})
        return db

    def test_response_json_is_rfc8259_valid(self):
        db = self._db_with(1.0, math.inf, -math.inf, 2.5)
        res = db.run_many([Query("m", 0, 100)])
        text = wire.response_to_json(res)
        # stdlib strict parsing: would fail on bare Infinity/NaN tokens
        payload = json.loads(text, parse_constant=lambda t: pytest.fail(
            f"bare non-finite token {t!r} in wire JSON"))
        dps = payload["results"][0]["series"][0]["dps"]
        assert dps["10"] == "Infinity"
        assert dps["20"] == "-Infinity"

    def test_infinity_round_trip(self):
        db = self._db_with(math.inf, -math.inf)
        res = db.run_many([Query("m", 0, 100)])
        (decoded,) = wire.decode_response(wire.response_to_json(res))
        assert list(decoded.series[0].values) == [math.inf, -math.inf]

    def test_unknown_value_spellings_rejected(self):
        base = {"version": WIRE_VERSION, "results": [
            {"series": [{"metric": "m", "tags": {}, "dps": {"0": None}}],
             "scannedPoints": 0}]}
        for bad in ("inf", "+Infinity", "NaN", True):
            payload = json.loads(json.dumps(base))
            payload["results"][0]["series"][0]["dps"]["0"] = bad
            with pytest.raises(WireError):
                wire.decode_response(payload)


class TestErrorResponses:
    """Satellite 1: errors are answered in-band, not raised at the caller."""

    def test_handle_request_answers_bad_version(self, db):
        response = handle_request(db, {"version": 99, "queries": []})
        assert response["version"] == WIRE_VERSION
        assert response["error"]["type"] == "WireError"
        assert "version" in response["error"]["message"]

    def test_handle_request_answers_malformed_query(self, db):
        response = handle_request(db, {
            "version": WIRE_VERSION,
            "queries": [{"metric": "m", "start": 5, "end": 1}],
        })
        assert response["error"]["type"] == "WireError"

    def test_handle_request_answers_bad_json_text(self, db):
        response = handle_request(db, "{not json")
        assert response["error"]["type"] == "WireError"

    def test_error_response_survives_json(self, db):
        response = handle_request(db, {"version": 99})
        assert json.loads(wire.error_to_json(
            WireError(response["error"]["message"]))) is not None
        assert json.loads(json.dumps(response, allow_nan=False)) == response

    def test_decode_response_raises_remote_error(self):
        response = wire.encode_error(WireError("nope"))
        with pytest.raises(RemoteQueryError) as err:
            wire.decode_response(response)
        assert err.value.error_type == "WireError"
        assert err.value.message == "nope"

    def test_good_request_unaffected(self, db):
        qs = [Query("air.co2.ppm", 0, 4000)]
        response = handle_request(db, wire.request_to_json(qs))
        assert "error" not in response
        assert wire.decode_response(response)


class TestCatalogCodec:
    @pytest.fixture
    def db(self):
        db = TSDB()
        for node in ("a", "b", "c"):
            db.put("air.co2.ppm", 10, 400.0,
                   {"node": node, "city": "trondheim"})
        db.put("weather.temperature.c", 10, 3.0, {"city": "vejle"})
        return db

    @pytest.mark.parametrize("op,kwargs", [
        ("metrics", {}),
        ("tag_keys", {"metric": "air.co2.ppm"}),
        ("tag_values", {"metric": "air.co2.ppm", "key": "node"}),
        ("cardinality", {"metric": "air.co2.ppm"}),
        ("cardinality", {"metric": "air.co2.ppm",
                         "tags": {"node": "a|b", "city": "*"}}),
    ])
    def test_request_round_trip(self, op, kwargs):
        encoded = wire.encode_catalog_request(op, **kwargs)
        req = wire.decode_catalog_request(json.dumps(encoded))
        assert req.op == op
        assert req.metric == kwargs.get("metric")
        assert req.key == kwargs.get("key")
        assert dict(req.tags) == kwargs.get("tags", {})

    def test_handle_answers_from_store(self, db):
        r = wire.handle_catalog_request(
            db, wire.encode_catalog_request("metrics"))
        assert wire.decode_catalog_response(r) == [
            "air.co2.ppm", "weather.temperature.c"]
        r = wire.handle_catalog_request(
            db,
            wire.encode_catalog_request(
                "tag_values", metric="air.co2.ppm", key="node"),
        )
        assert wire.decode_catalog_response(r) == ["a", "b", "c"]
        r = wire.handle_catalog_request(
            db,
            wire.encode_catalog_request(
                "cardinality", metric="air.co2.ppm", tags={"node": "a|b"}),
        )
        assert wire.decode_catalog_response(r) == 2

    def test_response_echoes_identifying_fields(self, db):
        r = wire.handle_catalog_request(
            db,
            wire.encode_catalog_request(
                "tag_values", metric="air.co2.ppm", key="node"),
        )
        assert r["catalog"]["op"] == "tag_values"
        assert r["catalog"]["metric"] == "air.co2.ppm"
        assert r["catalog"]["key"] == "node"
        assert json.loads(json.dumps(r, allow_nan=False)) == r

    @pytest.mark.parametrize("request_obj,fragment", [
        ({"version": 99, "catalog": {"op": "metrics"}}, "version"),
        ({"version": WIRE_VERSION}, "'catalog' must be an object"),
        ({"version": WIRE_VERSION, "catalog": {"op": "nope"}},
         "unknown catalog op"),
        ({"version": WIRE_VERSION, "catalog": {"op": "metrics"},
          "extra": 1}, "unknown request fields"),
        ({"version": WIRE_VERSION,
          "catalog": {"op": "metrics", "bogus": 1}},
         "unknown catalog fields"),
        ({"version": WIRE_VERSION, "catalog": {"op": "tag_keys"}},
         "missing required field"),
        ({"version": WIRE_VERSION, "catalog": {"op": "tag_values",
                                               "metric": "m"}},
         "missing required field"),
        ({"version": WIRE_VERSION,
          "catalog": {"op": "metrics", "metric": "m"}},
         "does not take field"),
        ({"version": WIRE_VERSION,
          "catalog": {"op": "tag_keys", "metric": "m", "tags": {}}},
         "does not take field"),
        ({"version": WIRE_VERSION,
          "catalog": {"op": "cardinality", "metric": "m", "tags": 3}},
         "'tags' must be an object"),
        ({"version": WIRE_VERSION,
          "catalog": {"op": "tag_keys", "metric": 5}},
         "'metric' must be a string"),
    ])
    def test_strict_decode_rejections(self, request_obj, fragment):
        with pytest.raises(WireError) as err:
            wire.decode_catalog_request(request_obj)
        assert fragment in str(err.value)

    def test_handle_answers_errors_in_band(self, db):
        r = wire.handle_catalog_request(db, "{not json")
        assert r["error"]["type"] == "WireError"
        r = wire.handle_catalog_request(
            db,
            wire.encode_catalog_request(
                "tag_values", metric="air.co2.ppm", key="bad|key"),
        )
        assert r["error"]["type"] == "InvalidName"
        with pytest.raises(RemoteQueryError) as err:
            wire.decode_catalog_response(r)
        assert err.value.error_type == "InvalidName"

    def test_decode_response_strictness(self):
        with pytest.raises(WireError):
            wire.decode_catalog_response({"version": 99})
        with pytest.raises(WireError):
            wire.decode_catalog_response(
                {"version": WIRE_VERSION, "catalog": []})
        with pytest.raises(WireError):
            wire.decode_catalog_response(
                {"version": WIRE_VERSION, "catalog": {"values": "oops"}})
        with pytest.raises(WireError):
            wire.decode_catalog_response(
                {"version": WIRE_VERSION, "catalog": {"count": True}})
