"""Tests for repro.geo.geojson."""

import json

import pytest

from repro.geo import (
    GeoPoint,
    dumps,
    feature_collection,
    line_feature,
    point_feature,
    polygon_feature,
)


def test_point_feature_structure():
    f = point_feature(GeoPoint(63.4, 10.4), {"name": "ctt-01"})
    assert f["type"] == "Feature"
    assert f["geometry"]["type"] == "Point"
    assert f["geometry"]["coordinates"] == [10.4, 63.4]  # lon first
    assert f["properties"]["name"] == "ctt-01"


def test_point_feature_default_properties():
    f = point_feature(GeoPoint(0.0, 0.0))
    assert f["properties"] == {}


def test_line_feature():
    f = line_feature([GeoPoint(0.0, 0.0), GeoPoint(1.0, 1.0)], {"kind": "link"})
    assert f["geometry"]["type"] == "LineString"
    assert len(f["geometry"]["coordinates"]) == 2


def test_line_feature_too_short():
    with pytest.raises(ValueError):
        line_feature([GeoPoint(0.0, 0.0)])


def test_polygon_auto_close():
    ring = [GeoPoint(0.0, 0.0), GeoPoint(0.0, 1.0), GeoPoint(1.0, 1.0)]
    f = polygon_feature(ring)
    coords = f["geometry"]["coordinates"][0]
    assert coords[0] == coords[-1]
    assert len(coords) == 4


def test_polygon_too_short():
    with pytest.raises(ValueError):
        polygon_feature([GeoPoint(0.0, 0.0), GeoPoint(1.0, 1.0)])


def test_feature_collection_and_dumps_round_trip():
    fc = feature_collection(
        [point_feature(GeoPoint(1.0, 2.0), {"i": i}) for i in range(3)]
    )
    text = dumps(fc)
    parsed = json.loads(text)
    assert parsed["type"] == "FeatureCollection"
    assert len(parsed["features"]) == 3
    assert parsed["features"][2]["properties"]["i"] == 2
