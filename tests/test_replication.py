"""Hot-standby replication: log, shipper, follower, fault injection.

The contract under test, end to end: **a promoted follower is
byte-identical (via ``dumps``) to a from-scratch build of the
acknowledged input prefix**, under arbitrary interleavings of ingest
and retention and under every fault a seeded :class:`FaultPlan` can
inject on the wire — disconnects, duplicated and reordered records,
torn tails, flipped bytes, refused connects.

Layers, in increasing integration order:

- :class:`ReplicationLog` unit behavior: monotonic contiguous
  sequencing, ack-trimming, ``pending_after`` windows, segment teeing
  (including a region lane's spill files);
- :class:`ReplicatedStore`: every write surface tees exactly the block
  that rebuilds the store, reads delegate untouched;
- shipper → follower over real sockets: clean-path equivalence (single
  and sharded stores), duplicate suppression, promote-freezes-store;
- the **fault-injection property** (hypothesis): random op sequences
  through a :class:`FaultProxy` running seeded chaos plans, asserting
  byte-equality after catch-up plus the zero-acknowledged-loss
  invariant on a mid-stream primary kill;
- a live **two-process failover**: ``python -m repro follow`` in a
  subprocess, promoted by SIGUSR1 mid-stream, then queried over the
  standard endpoint and diffed against a local reference store.
"""

import asyncio
import io
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import (
    Follower,
    ReplicatedStore,
    ReplicationLog,
    SegmentShipper,
)
from repro.replication.faults import FaultPlan, FaultProxy
from repro.tsdb import (
    BatchBuilder,
    DataPoint,
    DeleteBefore,
    DeleteSeriesBefore,
    PointBatch,
    Query,
    SegmentWriter,
    ShardedTSDB,
    TSDB,
    dumps,
    load,
    parse_series_key,
)
from repro.tsdb.segments import decode_block, decode_frame

# Tight timings so a full fault schedule replays in well under a second
# per example; generous waits only where a test would otherwise hang.
FAST = dict(backoff=0.005, max_backoff=0.05, connect_timeout=2.0, seed=0)


def small_batch(i: int, keys=("a", "b")) -> PointBatch:
    b = BatchBuilder()
    for node in keys:
        b.add("air.co2.ppm", 100 * i, 400.0 + i, {"node": node})
    return b.build()


def replay_log(log_records) -> TSDB:
    """Rebuild a store by applying framed log records in order — the
    ground truth the follower must reproduce."""
    db = TSDB()
    for _seq, frame in log_records:
        item = decode_block(*decode_frame(frame))
        if isinstance(item, PointBatch):
            db.put_batch(item)
        elif isinstance(item, DeleteSeriesBefore):
            db.delete_series_before(item.key, item.cutoff)
        elif isinstance(item, DeleteBefore):
            db.delete_before(item.cutoff, exclude_suffix=item.exclude_suffix)
    return db


class TestReplicationLog:
    def test_sequences_are_contiguous_from_one(self):
        log = ReplicationLog()
        assert log.last_seq == 0 and log.acked_seq == 0
        seqs = [log.append_batch(small_batch(i)) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert log.last_seq == 5 and len(log) == 5

    def test_empty_batch_appends_nothing(self):
        log = ReplicationLog()
        log.append_batch(small_batch(0))
        assert log.append_batch(PointBatch.empty()) == 1  # unchanged
        assert len(log) == 1

    def test_ack_trims_prefix_and_is_monotonic(self):
        log = ReplicationLog()
        for i in range(6):
            log.append_batch(small_batch(i))
        log.ack(4)
        assert log.acked_seq == 4 and len(log) == 2
        log.ack(2)  # stale ack: no-op
        assert log.acked_seq == 4 and len(log) == 2
        log.ack(100)  # beyond the end: everything goes
        assert len(log) == 0 and log.acked_seq == 100

    def test_pending_after_is_a_window(self):
        log = ReplicationLog()
        for i in range(6):
            log.append_batch(small_batch(i))
        log.ack(2)
        assert [s for s, _ in log.pending_after(0)] == [3, 4, 5, 6]
        assert [s for s, _ in log.pending_after(4)] == [5, 6]
        assert [s for s, _ in log.pending_after(3, limit=2)] == [4, 5]
        assert log.pending_after(6) == []

    def test_trim_waits_for_the_slowest_follower(self):
        # Fan-out: records are freed only below the *minimum* acked
        # cursor, so a fast follower can't release what a slow one
        # still needs.
        log = ReplicationLog()
        for i in range(6):
            log.append_batch(small_batch(i))
        log.register_follower("fast")
        log.register_follower("slow")
        log.ack(6, follower="fast")
        assert log.acked_for("fast") == 6
        assert log.acked_seq == 0 and len(log) == 6  # slow holds them
        log.ack(4, follower="slow")
        assert log.acked_seq == 4 and len(log) == 2
        log.ack(6, follower="slow")
        assert len(log) == 0
        assert log.follower_cursors == {"fast": 6, "slow": 6}

    def test_register_before_ack_holds_records(self):
        log = ReplicationLog()
        log.append_batch(small_batch(0))
        # Single implicit follower drains as before...
        log.ack(1)
        assert len(log) == 0
        # ...but a follower registered later starts at the trim floor:
        # what was already dropped can never be shipped to it.
        log.register_follower("late")
        assert log.acked_for("late") == 1
        log.append_batch(small_batch(1))
        log.ack(2)  # default follower alone no longer trims
        assert len(log) == 1
        log.ack(2, follower="late")
        assert len(log) == 0

    def test_forget_follower_releases_its_hold(self):
        log = ReplicationLog()
        for i in range(4):
            log.append_batch(small_batch(i))
        log.register_follower("gone")
        log.ack(4, follower="default")
        assert len(log) == 4  # "gone" never acked anything
        log.forget_follower("gone")
        assert len(log) == 0
        assert "gone" not in log.follower_cursors

    def test_unknown_follower_reads_trim_floor(self):
        log = ReplicationLog()
        for i in range(3):
            log.append_batch(small_batch(i))
        assert log.acked_for("never-seen") == 0
        log.ack(2)
        assert log.acked_for("never-seen") == 2  # 1..2 already dropped

    def test_marker_records_round_trip(self):
        log = ReplicationLog()
        log.append_delete_before(500, exclude_suffix=".rollup")
        key = small_batch(0).keys[0]
        log.append_delete_series_before(key, 250)
        items = [decode_block(*decode_frame(f))
                 for _, f in log.pending_after(0)]
        assert items[0] == DeleteBefore(500, ".rollup")
        assert items[1] == DeleteSeriesBefore(key, 250)

    def test_append_segment_tees_a_wal_file(self, tmp_path):
        path = tmp_path / "wal.seg"
        with SegmentWriter(path) as w:
            w.comment("spill header")
            w.write_batch(small_batch(1))
            w.delete_before(50)
            w.write_batch(small_batch(2))
        log = ReplicationLog()
        assert log.append_segment(path) == 3  # comments don't replicate
        replayed = replay_log(log.pending_after(0))
        assert dumps(replayed) == dumps(load(path))

    def test_append_segment_ships_region_spill_files(self, tmp_path):
        """A region lane's parked spill segments are directly shippable."""
        from repro.region.queue import AsyncBatchQueue, Backpressure

        q = AsyncBatchQueue(3, Backpressure.SPILL, spill_dir=tmp_path)
        for i in range(4):  # 4 batches x 2 points: overflows into spill
            assert q.offer(small_batch(i))
        spills = q.spill_files()
        assert spills, "expected an overflow spill segment"
        log = ReplicationLog()
        teed = sum(log.append_segment(p) for p in spills)
        assert teed > 0
        spilled_points = sum(load(p).exact_point_count() for p in spills)
        assert log.appended_points == spilled_points


class TestReplicatedStore:
    def test_every_write_surface_tees_its_block(self):
        primary = ReplicatedStore(TSDB())
        primary.put("m", 10, 1.0, {"n": "a"})
        primary.put_point(DataPoint.make("m", 20, 2.0, {"n": "a"}))
        primary.put_batch(small_batch(1))
        primary.put_series("m", [30, 40], [3.0, 4.0], {"n": "b"})
        primary.put_many([DataPoint.make("m", 50, 5.0, {"n": "c"})])
        primary.delete_before(15)
        primary.delete_series_before(parse_series_key("m{n=b}"), 35)
        replayed = replay_log(primary.log.pending_after(0))
        assert dumps(replayed, format="binary") == dumps(
            primary.wrapped, format="binary"
        )

    def test_reads_and_introspection_delegate(self):
        primary = ReplicatedStore(ShardedTSDB(3))
        primary.put_batch(small_batch(1))
        assert primary.exact_point_count() == 2
        assert primary.run(Query("air.co2.ppm", 0, 10_000)).series
        assert isinstance(primary.wrapped, ShardedTSDB)

    def test_empty_batch_is_not_logged(self):
        primary = ReplicatedStore(TSDB())
        primary.put_batch(PointBatch.empty())
        primary.put_many([])
        assert primary.log.last_seq == 0


# ---------------------------------------------------------------------------
# Socket-level harness
# ---------------------------------------------------------------------------

def ship(
    primary: ReplicatedStore,
    follower: Follower,
    *,
    plan: FaultPlan | None = None,
    ops=None,
    timeout: float = 20.0,
):
    """Run shipper → (optional FaultProxy) → follower on a private loop
    until the log is fully acknowledged; returns the follower."""

    async def _run():
        host, port = await follower.start()
        proxy = None
        if plan is not None:
            proxy = FaultProxy(host, port, plan)
            host, port = await proxy.start()
        shipper = SegmentShipper(primary.log, host, port, **FAST)
        shipper.start()
        try:
            if ops is not None:
                ops(primary)
            await shipper.wait_caught_up(timeout=timeout)
            await follower.wait_applied(primary.log.last_seq, timeout=timeout)
        finally:
            await shipper.stop()
            if proxy is not None:
                await proxy.stop()
            await follower.stop()

    asyncio.run(_run())
    return follower


class TestShipperFollower:
    @pytest.mark.parametrize("shards", [0, 3])
    def test_clean_path_equivalence(self, shards):
        primary = ReplicatedStore(TSDB())
        for i in range(8):
            primary.put_batch(small_batch(i))
        primary.delete_before(250)
        follower = ship(primary, Follower(shards=shards))
        assert dumps(follower.store, format="binary") == dumps(
            primary.wrapped, format="binary"
        )
        assert follower.stats.gaps == 0 and follower.stats.corrupt_frames == 0

    def test_catch_up_from_preloaded_log(self):
        """Follower connects late: everything replays from seq 1."""
        primary = ReplicatedStore(TSDB())
        for i in range(20):
            primary.put_batch(small_batch(i))
        follower = ship(primary, Follower())
        assert follower.applied_seq == 20
        assert dumps(follower.store) == dumps(primary.wrapped)

    def test_duplicates_are_acked_not_applied(self):
        primary = ReplicatedStore(TSDB())
        for i in range(10):
            primary.put_batch(small_batch(i))
        plan = FaultPlan(seed=3, p_dup=0.5)
        follower = ship(primary, Follower(), plan=plan)
        assert follower.stats.duplicates > 0
        assert follower.stats.records_applied == 10
        assert dumps(follower.store) == dumps(primary.wrapped)

    def test_reorder_forces_gap_and_heals(self):
        primary = ReplicatedStore(TSDB())
        for i in range(12):
            primary.put_batch(small_batch(i))
        plan = FaultPlan(seed=5, p_swap=0.4, max_faults=4)
        follower = ship(primary, Follower(), plan=plan)
        assert follower.stats.gaps > 0  # reordering was actually seen
        assert dumps(follower.store) == dumps(primary.wrapped)

    def test_promote_freezes_the_store(self):
        primary = ReplicatedStore(TSDB())
        for i in range(5):
            primary.put_batch(small_batch(i))

        async def _run():
            follower = Follower()
            host, port = await follower.start()
            shipper = SegmentShipper(primary.log, host, port, **FAST)
            shipper.start()
            await shipper.wait_caught_up(timeout=10)
            store = follower.promote()
            frozen = dumps(store, format="binary")
            primary.put_batch(small_batch(99))  # primary keeps writing
            await asyncio.sleep(0.05)
            assert dumps(store, format="binary") == frozen
            assert follower.promote() is store  # idempotent
            await shipper.stop()
            await follower.stop()

        asyncio.run(_run())


# ---------------------------------------------------------------------------
# The fault-injection equivalence property
# ---------------------------------------------------------------------------

KEY_POOL = ("a", "b", "c")

# One op == one log record, so the follower's applied_seq indexes
# directly into the op list (the mid-kill prefix property needs this).
op_strategy = st.one_of(
    st.tuples(
        st.just("batch"),
        st.integers(0, 50),
        st.lists(st.sampled_from(KEY_POOL), min_size=1, max_size=3),
    ),
    st.tuples(st.just("del"), st.integers(0, 5_000)),
    st.tuples(
        st.just("delseries"), st.sampled_from(KEY_POOL), st.integers(0, 5_000)
    ),
)


def apply_op(store, op) -> None:
    if op[0] == "batch":
        _, i, nodes = op
        b = BatchBuilder()
        for j, node in enumerate(nodes):
            b.add("air.co2.ppm", 100 * i + j, float(i), {"node": node})
        store.put_batch(b.build())
    elif op[0] == "del":
        store.delete_before(op[1])
    else:
        store.delete_series_before(
            parse_series_key(f"air.co2.ppm{{node={op[1]}}}"), op[2]
        )


def build_reference(ops) -> TSDB:
    ref = TSDB()
    for op in ops:
        apply_op(ref, op)
    return ref


class TestFaultInjectionProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=1, max_size=25),
        seed=st.integers(0, 2**16),
        intensity=st.floats(0.0, 0.6),
    )
    def test_follower_identical_under_chaos(self, ops, seed, intensity):
        """After catch-up through a seeded chaos proxy, the follower is
        byte-identical to a from-scratch build of the full input."""
        primary = ReplicatedStore(TSDB())
        plan = FaultPlan.chaos(seed, intensity=intensity, max_faults=12)
        follower = ship(
            primary,
            Follower(shards=3 if seed % 2 else 0),
            plan=plan,
            ops=lambda p: [apply_op(p, op) for op in ops],
        )
        reference = build_reference(ops)
        assert dumps(follower.store, format="binary") == dumps(
            reference, format="binary"
        )
        assert dumps(primary.wrapped, format="binary") == dumps(
            reference, format="binary"
        )
        # Zero acknowledged loss: nothing acked beyond what was applied.
        assert primary.log.acked_seq <= follower.applied_seq

    @settings(max_examples=10, deadline=None)
    @given(
        ops=st.lists(op_strategy, min_size=2, max_size=20),
        seed=st.integers(0, 2**16),
        kill_after=st.integers(0, 19),
    )
    def test_mid_stream_kill_promotes_a_clean_prefix(
        self, ops, seed, kill_after
    ):
        """Kill the primary's shipper mid-stream, promote the follower:
        its store equals a from-scratch build of exactly the eagerly
        applied op prefix — never a torn half-applied state — and no
        acknowledged record is lost."""
        primary = ReplicatedStore(TSDB())
        plan = FaultPlan.chaos(seed, intensity=0.3, max_faults=6)

        async def _run():
            follower = Follower()
            host, port = await follower.start()
            proxy = FaultProxy(host, port, plan)
            phost, pport = await proxy.start()
            shipper = SegmentShipper(primary.log, phost, pport, **FAST)
            task = shipper.start()
            try:
                for op in ops:
                    apply_op(primary, op)
                target = min(kill_after, len(ops))
                try:
                    await follower.wait_applied(target, timeout=10)
                except TimeoutError:  # pragma: no cover - fault-timing
                    pass
                # The kill: no graceful stop, the connection just dies.
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                await asyncio.sleep(0)  # let the follower see the close
                store = follower.promote()
                applied = follower.applied_seq
                await follower.stop()
                await proxy.stop()
                return store, applied

            finally:
                if not task.cancelled():
                    task.cancel()
                    await asyncio.gather(task, return_exceptions=True)

        store, applied = asyncio.run(_run())
        assert 0 <= applied <= len(ops)
        reference = build_reference(ops[:applied])
        assert dumps(store, format="binary") == dumps(
            reference, format="binary"
        )
        # Zero acknowledged loss: every acked record survived promotion.
        assert primary.log.acked_seq <= applied


# ---------------------------------------------------------------------------
# Two-process failover through the CLI
# ---------------------------------------------------------------------------

class _LineReader:
    """Non-blocking line reader over a subprocess pipe."""

    def __init__(self, stream):
        self.lines: "queue.Queue[str]" = queue.Queue()
        self.seen: list[str] = []
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True
        )
        self._thread.start()

    def _pump(self, stream):
        for raw in stream:
            self.lines.put(raw.decode(errors="replace").rstrip("\n"))
        self.lines.put("")  # EOF marker

    def expect(self, prefix: str, timeout: float = 20.0) -> str:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise AssertionError(
                    f"no line starting with {prefix!r}; saw {self.seen!r}"
                )
            try:
                line = self.lines.get(timeout=remaining)
            except queue.Empty:
                raise AssertionError(
                    f"no line starting with {prefix!r}; saw {self.seen!r}"
                ) from None
            self.seen.append(line)
            if line.startswith(prefix):
                return line


@pytest.mark.skipif(not hasattr(signal, "SIGUSR1"), reason="needs SIGUSR1")
def test_two_process_failover(tmp_path):
    """End-to-end drill: a real ``repro follow`` process is fed by an
    in-test primary, promoted with SIGUSR1 mid-stream, serves queries
    over the standard endpoint, and exits cleanly on SIGTERM.  The
    served answer must equal the local primary's, and the promote-time
    snapshot must reload byte-identical."""
    from repro.serve import QueryClient

    repo_root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")
    env["PYTHONUNBUFFERED"] = "1"
    snap_path = tmp_path / "promoted.seg"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "follow",
            "--listen", "127.0.0.1:0",
            "--serve-port", "0",
            "--snapshot-on-promote", str(snap_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=repo_root,
    )
    out = _LineReader(proc.stdout)
    try:
        line = out.expect("following on ")
        host, port = line.removeprefix("following on ").rsplit(":", 1)

        primary = ReplicatedStore(TSDB())
        for i in range(30):
            primary.put_batch(small_batch(i))
        primary.delete_before(400)

        async def _feed():
            shipper = SegmentShipper(primary.log, host, int(port), **FAST)
            shipper.start()
            await shipper.wait_caught_up(timeout=20)
            await shipper.stop()

        asyncio.run(_feed())

        proc.send_signal(signal.SIGUSR1)
        promoted = out.expect("promoted at seq ")
        assert promoted.startswith(f"promoted at seq {primary.log.last_seq}")
        out.expect("snapshot: ")
        serve_line = out.expect("serving on ")
        shost, sport = (
            serve_line.removeprefix("serving on ").rsplit(":", 1)
        )

        q = Query("air.co2.ppm", 0, 10_000, downsample="5m-avg")
        with QueryClient(shost, int(sport), deadline=15.0) as client:
            reply = client.request([q])
        from repro.tsdb import wire

        local = primary.wrapped.run(q)
        assert (
            reply["results"][0]["series"]
            == wire.encode_response([local])["results"][0]["series"]
        )

        # The promote-time snapshot reloads into the same bytes.
        assert dumps(load(snap_path), format="binary") == dumps(
            primary.wrapped, format="binary"
        )

        proc.send_signal(signal.SIGTERM)
        out.expect("bye")
        assert proc.wait(timeout=15) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
