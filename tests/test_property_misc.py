"""Property-based tests for geo, MQTT topics, LoRa codec/airtime, analytics."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geo import GeoPoint, haversine_m
from repro.lorawan import (
    Measurements,
    airtime_s,
    decode_measurements,
    encode_measurements,
)
from repro.mqtt import topic_matches, validate_filter, validate_topic
from repro.analytics import gap_report, interpolate_gaps
from repro.sensors.power import soc_to_voltage, voltage_to_soc

lats = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
lons = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
geo_points = st.builds(GeoPoint, lats, lons)


class TestGeoProperties:
    @given(geo_points, geo_points)
    @settings(max_examples=200, deadline=None)
    def test_distance_symmetric_nonnegative(self, a, b):
        d1 = a.distance_to(b)
        d2 = b.distance_to(a)
        assert d1 >= 0.0
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-6)

    @given(geo_points, geo_points, geo_points)
    @settings(max_examples=200, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(geo_points, st.floats(0.0, 359.99), st.floats(0.0, 50_000.0))
    @settings(max_examples=200, deadline=None)
    def test_destination_distance_consistent(self, p, bearing, distance):
        q = p.destination(bearing, distance)
        assert p.distance_to(q) == pytest.approx(distance, rel=1e-6, abs=0.01)


topic_level = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
)
topics = st.lists(topic_level, min_size=1, max_size=5).map("/".join)


class TestMqttTopicProperties:
    @given(topics)
    @settings(max_examples=200, deadline=None)
    def test_topic_matches_itself(self, topic):
        validate_topic(topic)
        assert topic_matches(topic, topic)

    @given(topics)
    @settings(max_examples=200, deadline=None)
    def test_hash_wildcard_matches_everything(self, topic):
        assume(not topic.startswith("$"))
        assert topic_matches("#", topic)

    @given(topics)
    @settings(max_examples=200, deadline=None)
    def test_plus_substitution_matches(self, topic):
        levels = topic.split("/")
        for i in range(len(levels)):
            f = "/".join(levels[:i] + ["+"] + levels[i + 1 :])
            validate_filter(f)
            assert topic_matches(f, topic)

    @given(topics, topics)
    @settings(max_examples=200, deadline=None)
    def test_exact_filters_only_match_equal_topics(self, f, topic):
        if f != topic:
            assert not topic_matches(f, topic)


measurement_floats = st.floats(min_value=0.0, max_value=3000.0, allow_nan=False)


class TestLorawanProperties:
    @given(
        measurement_floats,
        st.floats(0.0, 500.0),
        st.floats(0.0, 500.0),
        st.floats(0.0, 500.0),
        st.floats(-80.0, 80.0),
        st.floats(300.0, 1100.0),
        st.floats(0.0, 100.0),
        st.floats(3.0, 4.2),
        st.integers(0, 65535),
    )
    @settings(max_examples=200, deadline=None)
    def test_codec_round_trip_within_quantization(
        self, co2, no2, pm10, pm25, temp, pres, hum, batt, seq
    ):
        m = Measurements(co2, no2, pm10, pm25, temp, pres, hum, batt, seq)
        out = decode_measurements(encode_measurements(m))
        # Tolerance = half the quantization step (+ float epsilon).
        assert out.co2_ppm == pytest.approx(co2, abs=0.5001)
        assert out.no2_ugm3 == pytest.approx(no2, abs=0.0501)
        assert out.pm10_ugm3 == pytest.approx(pm10, abs=0.0501)
        assert out.temperature_c == pytest.approx(temp, abs=0.00501)
        assert out.pressure_hpa == pytest.approx(pres, abs=0.0501)
        assert out.humidity_pct == pytest.approx(hum, abs=0.00501)
        assert out.battery_v == pytest.approx(batt, abs=0.000501)
        assert out.sequence == seq

    @given(st.integers(0, 200), st.sampled_from([7, 8, 9, 10, 11, 12]))
    @settings(max_examples=200, deadline=None)
    def test_airtime_positive_and_monotone_in_size(self, size, sf):
        t = airtime_s(size, sf)
        assert t > 0.0
        assert airtime_s(size + 1, sf) >= t


class TestPowerCurveProperties:
    @given(st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_voltage_round_trip(self, soc):
        assert voltage_to_soc(soc_to_voltage(soc)) == pytest.approx(soc, abs=1e-6)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_voltage_monotone(self, a, b):
        if a < b:
            assert soc_to_voltage(a) <= soc_to_voltage(b)


finite_or_nan = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.just(float("nan")),
)


class TestImputationProperties:
    @given(st.lists(finite_or_nan, min_size=1, max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_interpolation_never_touches_observed_values(self, vals):
        v = np.array(vals)
        out = interpolate_gaps(v, max_gap=3)
        observed = np.isfinite(v)
        assert np.array_equal(out[observed], v[observed])

    @given(st.lists(finite_or_nan, min_size=1, max_size=100), st.integers(1, 5))
    @settings(max_examples=200, deadline=None)
    def test_interpolated_values_bounded_by_neighbours(self, vals, max_gap):
        v = np.array(vals)
        out = interpolate_gaps(v, max_gap=max_gap)
        finite = v[np.isfinite(v)]
        if finite.size:
            newly = np.isfinite(out) & ~np.isfinite(v)
            assert (out[newly] >= finite.min() - 1e-9).all()
            assert (out[newly] <= finite.max() + 1e-9).all()

    @given(st.lists(finite_or_nan, min_size=1, max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_gap_report_accounts_for_all_nans(self, vals):
        v = np.array(vals)
        report = gap_report(v, cadence_s=300)
        total_gap = sum(g.length for g in report.gaps)
        assert total_gap == int(np.count_nonzero(~np.isfinite(v)))
