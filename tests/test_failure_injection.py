"""Failure-injection integration tests: the system under adversity.

The paper's §2.3 is entirely about fault tolerance.  These tests inject
every failure class into the *full* ecosystem and verify the monitoring
and data layers respond as designed.
"""

import numpy as np
import pytest

from repro.core import CttEcosystem, EcosystemConfig, trondheim_deployment, vejle_deployment
from repro.dataport import AlarmKind, Severity
from repro.sensors import FaultEvent, FaultKind, FaultPlan
from repro.simclock import DAY, HOUR
from repro.tsdb import METRIC_CO2, Query


def make_eco(city="vejle", seed=31, **config):
    deployment = vejle_deployment() if city == "vejle" else trondheim_deployment()
    eco = CttEcosystem(
        [deployment], config=EcosystemConfig(seed=seed, **config)
    )
    eco.start()
    return eco


class TestSensorFailures:
    def test_transient_dropout_creates_gap_then_recovers(self):
        eco = make_eco()
        city = eco.city("vejle")
        eco.run(2 * HOUR)
        node = city.nodes["ctt-vj-01"]
        # Inject a 90-minute radio dropout.
        node.fault_plan.add(
            FaultEvent(FaultKind.TRANSIENT_DROPOUT, eco.now, 90 * 60)
        )
        eco.run(3 * HOUR)
        # The twin flagged it while silent, and it recovered after.
        status = city.dataport.sensor_status("ctt-vj-01")
        assert not status["overdue"]  # recovered by now
        history_kinds = [a.kind for a in city.dataport.alarms.history]
        assert AlarmKind.SENSOR_OVERDUE in history_kinds
        # The gap is visible in the data.
        res = eco.db.run(
            Query(METRIC_CO2, 0, eco.now, tags={"node": "ctt-vj-01"})
        ).single()
        diffs = np.diff(res.timestamps)
        assert diffs.max() >= 85 * 60

    def test_permanent_death_stays_overdue(self):
        eco = make_eco()
        city = eco.city("vejle")
        eco.run(HOUR)
        city.nodes["ctt-vj-02"].fault_plan.add(
            FaultEvent(FaultKind.PERMANENT_DEATH, eco.now)
        )
        eco.run(4 * HOUR)
        assert not city.nodes["ctt-vj-02"].alive
        assert city.dataport.alarms.is_active(
            AlarmKind.SENSOR_OVERDUE, "ctt-vj-02"
        )
        # The healthy sibling is unaffected.
        assert not city.dataport.alarms.is_active(
            AlarmKind.SENSOR_OVERDUE, "ctt-vj-01"
        )

    def test_stuck_channel_detectable_in_stored_data(self):
        from repro.analytics import stuck_values

        eco = make_eco()
        city = eco.city("vejle")
        city.nodes["ctt-vj-01"].fault_plan.add(
            FaultEvent(FaultKind.STUCK_VALUE, 0, channel="co2_ppm")
        )
        eco.run(3 * HOUR)
        res = eco.db.run(
            Query(METRIC_CO2, 0, eco.now, tags={"node": "ctt-vj-01"})
        ).single()
        runs = stuck_values(res.values, min_run=6, tolerance=0.5)
        assert runs  # the analytics catch what the fault injected

    def test_random_fault_config_runs_clean(self):
        """`with_faults=True` wiring: the ecosystem survives arbitrary
        (seeded) fault plans without crashing."""
        eco = make_eco(city="trondheim", with_faults=True, seed=97)
        eco.run(6 * HOUR)
        stats = eco.city("trondheim").delivery_stats()
        assert stats["processed_dataport"] > 0


class TestInfrastructureFailures:
    def test_network_server_outage_drops_everything(self):
        eco = make_eco()
        city = eco.city("vejle")
        eco.run(HOUR)
        before = city.network_server.forwarded
        city.network_server.online = False
        eco.run(HOUR)
        assert city.network_server.forwarded == before
        assert city.network_server.stats()["dropped_while_offline"] > 0
        city.network_server.online = True
        eco.run(HOUR)
        assert city.network_server.forwarded > before

    def test_gateway_outage_vejle_single_gateway(self):
        """Vejle has ONE gateway: its outage silences the whole city and
        must raise exactly one grouped alarm."""
        eco = make_eco()
        city = eco.city("vejle")
        eco.run(HOUR)
        city.plane.gateway("gw-vj-centrum").set_online(False)
        eco.run(2 * HOUR)
        assert city.dataport.alarms.is_active(
            AlarmKind.GATEWAY_OUTAGE, "gw-vj-centrum"
        )
        assert city.dataport.alarms.active(kind=AlarmKind.SENSOR_OVERDUE) == []
        assert len(city.dataport.fleet.overdue_sensors()) == 2

    def test_trondheim_multi_gateway_redundancy(self):
        """With 3 gateways, losing one must NOT silence any sensor —
        the density argument for multiple gateways."""
        eco = make_eco(city="trondheim", seed=17)
        city = eco.city("trondheim")
        eco.run(HOUR)
        city.plane.gateway("gw-tr-tyholt").set_online(False)
        eco.run(2 * HOUR)
        # The gateway alarm fires...
        assert city.dataport.alarms.is_active(
            AlarmKind.GATEWAY_OUTAGE, "gw-tr-tyholt"
        )
        # ...but data keeps flowing from every node via other gateways.
        snapshot = city.network_snapshot()
        assert snapshot["overdue_sensors"] == []

    def test_watchdog_cycle(self):
        eco = make_eco()
        city = eco.city("vejle")
        eco.run(HOUR)
        city.dataport.healthy = False
        eco.run(HOUR)
        assert city.watchdog.down
        assert city.dataport.alarms.is_active(
            AlarmKind.DATAPORT_DOWN, "dataport-vejle"
        )
        city.dataport.healthy = True
        eco.run(HOUR)
        assert not city.watchdog.down


class TestDataLayerResilience:
    def test_snapshot_survives_fault_run(self, tmp_path):
        from repro.tsdb import load, snapshot

        eco = make_eco(city="vejle", with_faults=True, seed=61)
        eco.run(4 * HOUR)
        path = tmp_path / "snap.log"
        n = snapshot(eco.db, path)
        restored = load(path)
        assert restored.point_count == n
        assert restored.metrics() == eco.db.metrics()

    def test_battery_low_alarm_from_real_depletion(self):
        from repro.sensors import PowerSpec

        eco = make_eco(
            power_spec=PowerSpec(battery_capacity_mah=40.0),
            initial_soc=0.3,
        )
        city = eco.city("vejle")
        eco.run(8 * HOUR)  # winter: no meaningful solar income
        kinds = {a.kind for a in city.dataport.alarms.history}
        assert kinds & {AlarmKind.BATTERY_LOW, AlarmKind.BATTERY_CRITICAL}
