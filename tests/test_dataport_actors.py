"""Tests for the actor runtime: mailboxes, hierarchy, supervision, timers."""

import pytest

from repro.dataport import (
    Actor,
    ActorSystem,
    SupervisionDirective,
    SupervisorStrategy,
    Terminated,
)
from repro.simclock import Scheduler, SimClock


class Echo(Actor):
    def __init__(self):
        super().__init__()
        self.seen = []

    def receive(self, message, sender):
        self.seen.append(message)


class Crasher(Actor):
    started = 0

    def __init__(self):
        super().__init__()
        type(self).started += 1
        self.seen = []

    def receive(self, message, sender):
        if message == "boom":
            raise RuntimeError("crash")
        self.seen.append(message)


def make_system():
    return ActorSystem(Scheduler(SimClock(start=0)))


class TestBasics:
    def test_tell_delivers(self):
        system = make_system()
        ref = system.spawn(Echo, "echo")
        ref.tell("hello")
        assert system.actor_instance(ref).seen == ["hello"]

    def test_fifo_across_actors(self):
        system = make_system()
        log = []

        class A(Actor):
            def receive(self, message, sender):
                log.append(("a", message))
                if message == "first":
                    b_ref.tell("from-a")
                    log.append(("a-done", message))

        class B(Actor):
            def receive(self, message, sender):
                log.append(("b", message))

        a_ref = system.spawn(A, "a")
        b_ref = system.spawn(B, "b")
        a_ref.tell("first")
        # Run-to-completion: A finishes before B's message is processed.
        assert log == [("a", "first"), ("a-done", "first"), ("b", "from-a")]

    def test_dead_letters(self):
        system = make_system()
        ref = system.spawn(Echo, "echo")
        system.stop(ref)
        ref.tell("lost")
        assert len(system.dead_letters) == 1
        assert system.dead_letters[0].message == "lost"

    def test_duplicate_names_rejected(self):
        system = make_system()
        system.spawn(Echo, "echo")
        with pytest.raises(ValueError):
            system.spawn(Echo, "echo")

    def test_name_with_slash_rejected(self):
        with pytest.raises(ValueError):
            make_system().spawn(Echo, "a/b")

    def test_paths(self):
        system = make_system()
        ref = system.spawn(Echo, "echo")
        assert ref.path == "dataport:///echo"
        assert ref.name == "echo"


class TestHierarchy:
    def test_spawn_children(self):
        system = make_system()

        class Parent(Actor):
            def pre_start(self):
                self.child = self.context.spawn(Echo, "kid")

            def receive(self, message, sender):
                self.child.tell(message)

        parent = system.spawn(Parent, "parent")
        parent.tell("down")
        child_ref = system.actor_of("dataport:///parent/kid")
        assert child_ref is not None
        assert system.actor_instance(child_ref).seen == ["down"]

    def test_stop_cascades_to_children(self):
        system = make_system()

        class Parent(Actor):
            def pre_start(self):
                self.context.spawn(Echo, "kid")

            def receive(self, message, sender):
                pass

        parent = system.spawn(Parent, "parent")
        assert system.actor_of("dataport:///parent/kid") is not None
        system.stop(parent)
        assert system.actor_of("dataport:///parent/kid") is None

    def test_watch_notifies_on_termination(self):
        system = make_system()
        watcher_ref = system.spawn(Echo, "watcher")
        target_ref = system.spawn(Echo, "target")
        watcher = system.actor_instance(watcher_ref)
        watcher.context.watch(target_ref)
        system.stop(target_ref)
        assert any(isinstance(m, Terminated) for m in watcher.seen)

    def test_tree(self):
        system = make_system()

        class Parent(Actor):
            def pre_start(self):
                self.context.spawn(Echo, "kid")

            def receive(self, message, sender):
                pass

        system.spawn(Parent, "parent")
        assert system.tree() == {"parent": {"kid": {}}}


class TestSupervision:
    def setup_method(self):
        Crasher.started = 0

    def test_restart_on_failure(self):
        system = make_system()
        ref = system.spawn(Crasher, "c")
        ref.tell("ok")
        ref.tell("boom")
        ref.tell("after")
        assert Crasher.started == 2  # initial + one restart
        assert system.actor_instance(ref).seen == ["after"]  # state reset

    def test_restart_budget_exhaustion_stops(self):
        system = make_system()
        ref = system.spawn(Crasher, "c")
        for _ in range(5):
            ref.tell("boom")
        # Default budget: 3 restarts, then STOP.
        assert system.actor_instance(ref) is None
        ref.tell("late")
        assert system.dead_letters

    def test_stop_directive(self):
        system = make_system()

        class StopParent(Actor):
            def pre_start(self):
                self.kid = self.context.spawn(Crasher, "kid")

            def receive(self, message, sender):
                self.kid.tell(message)

            def supervisor_strategy(self):
                return SupervisorStrategy(directive=SupervisionDirective.STOP)

        parent = system.spawn(StopParent, "parent")
        parent.tell("boom")
        assert system.actor_of("dataport:///parent/kid") is None

    def test_escalate_directive(self):
        system = make_system()
        stopped = []

        class EscalateParent(Actor):
            def pre_start(self):
                self.kid = self.context.spawn(Crasher, "kid")

            def receive(self, message, sender):
                self.kid.tell(message)

            def post_stop(self):
                stopped.append("parent")

            def supervisor_strategy(self):
                return SupervisorStrategy(
                    directive=SupervisionDirective.ESCALATE, max_restarts=0
                )

        parent = system.spawn(EscalateParent, "parent")
        parent.tell("boom")
        # Escalation reaches the root, whose default strategy restarts
        # the parent (children are rebuilt fresh).
        assert system.actor_of("dataport:///parent") is not None

    def test_restart_window_slides(self):
        sched = Scheduler(SimClock(start=0))
        system = ActorSystem(sched)
        ref = system.spawn(Crasher, "c")
        for _ in range(3):
            ref.tell("boom")
        sched.clock.advance(7200)  # new budget window
        ref.tell("boom")
        assert system.actor_instance(ref) is not None  # still alive


class TestTimers:
    def test_schedule_tell(self):
        sched = Scheduler(SimClock(start=0))
        system = ActorSystem(sched)
        ref = system.spawn(Echo, "echo")
        actor = system.actor_instance(ref)
        actor.context.schedule_tell(30, "tick")
        sched.run_until(29)
        assert actor.seen == []
        sched.run_until(31)
        assert actor.seen == ["tick"]

    def test_schedule_tell_every(self):
        sched = Scheduler(SimClock(start=0))
        system = ActorSystem(sched)
        ref = system.spawn(Echo, "echo")
        actor = system.actor_instance(ref)
        actor.context.schedule_tell_every(10, "tick")
        sched.run_until(35)
        assert actor.seen == ["tick"] * 3

    def test_context_now_tracks_clock(self):
        sched = Scheduler(SimClock(start=500))
        system = ActorSystem(sched)
        ref = system.spawn(Echo, "echo")
        assert system.actor_instance(ref).context.now == 500
