"""Tests for the ground-truth environment model."""

import datetime as dt

import numpy as np
import pytest

from repro.geo import GeoPoint, TRONDHEIM
from repro.sensors import (
    PollutionInjection,
    RoadSegment,
    SmoothNoise,
    TrafficIntensity,
    UrbanEnvironment,
    Weather,
)
from repro.simclock import DAY, HOUR, from_datetime


def ts(month=6, day=15, hour=12):
    return from_datetime(dt.datetime(2017, month, day, hour))


class TestSmoothNoise:
    def test_deterministic(self):
        n1 = SmoothNoise(seed=5, knot_spacing=3600)
        n2 = SmoothNoise(seed=5, knot_spacing=3600)
        assert n1(123456) == n2(123456)

    def test_different_seeds_differ(self):
        assert SmoothNoise(1, 3600)(999) != SmoothNoise(2, 3600)(999)

    def test_continuity(self):
        n = SmoothNoise(seed=3, knot_spacing=3600)
        deltas = [abs(n(t + 10) - n(t)) for t in range(0, 7200, 100)]
        assert max(deltas) < 0.5  # no jumps at 10 s spacing

    def test_hits_knots_exactly(self):
        n = SmoothNoise(seed=3, knot_spacing=100)
        assert n(200) == pytest.approx(n(200))
        # At a knot the interpolation weight is 0: value == knot value.
        assert abs(n(200) - n(199)) < 0.2

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            SmoothNoise(1, 0)

    def test_statistics_roughly_standard(self):
        n = SmoothNoise(seed=11, knot_spacing=100, sigma=2.0)
        vals = np.array([n(t) for t in range(0, 200_000, 100)])
        assert abs(vals.mean()) < 0.3
        assert 1.2 < vals.std() < 2.8


class TestWeather:
    def make(self):
        return Weather(seed=1, lat=63.43, lon=10.40)

    def test_summer_warmer_than_winter(self):
        w = self.make()
        summer = np.mean([w.temperature_c(ts(7, 15, h)) for h in range(24)])
        winter = np.mean([w.temperature_c(ts(1, 15, h)) for h in range(24)])
        assert summer > winter + 8.0

    def test_afternoon_warmer_than_night(self):
        w = self.make()
        days = [ts(6, d, 14) for d in range(1, 20)]
        nights = [ts(6, d, 3) for d in range(1, 20)]
        assert np.mean([w.temperature_c(t) for t in days]) > np.mean(
            [w.temperature_c(t) for t in nights]
        )

    def test_pressure_realistic_range(self):
        w = self.make()
        vals = [w.pressure_hpa(ts(3, d, 12)) for d in range(1, 28)]
        assert all(960.0 < v < 1065.0 for v in vals)

    def test_humidity_bounds(self):
        w = self.make()
        vals = [w.humidity_pct(ts(9, d, h)) for d in range(1, 28) for h in (0, 12)]
        assert all(15.0 <= v <= 100.0 for v in vals)

    def test_wind_positive(self):
        w = self.make()
        assert all(w.wind_speed_ms(ts(5, d, 12)) > 0 for d in range(1, 28))

    def test_cloud_cover_bounds(self):
        w = self.make()
        vals = [w.cloud_cover(ts(4, d, 12)) for d in range(1, 28)]
        assert all(0.0 <= v <= 1.0 for v in vals)

    def test_irradiance_zero_at_winter_night(self):
        w = self.make()
        assert w.irradiance_wm2(ts(12, 21, 0)) == 0.0

    def test_state_bundle(self):
        state = self.make().state(ts())
        assert state.temperature_c == self.make().temperature_c(ts())


class TestTrafficIntensity:
    def make(self):
        return TrafficIntensity(seed=2)

    def test_bounds(self):
        t = self.make()
        vals = [t(ts(6, d, h)) for d in range(1, 28) for h in range(24)]
        assert all(0.0 <= v <= 1.0 for v in vals)

    def test_weekday_rush_hours(self):
        t = self.make()
        # 2017-06-14 was a Wednesday.
        rush = np.mean([t(ts(6, 14, 8)), t(ts(6, 14, 16))])
        lull = t(ts(6, 14, 3))
        assert rush > lull + 0.2

    def test_weekend_flatter(self):
        t = self.make()
        # 2017-06-17/18 was a weekend.
        weekday_peak = max(t(ts(6, 14, h)) for h in range(24))
        weekend_peak = max(t(ts(6, 17, h)) for h in range(24))
        assert weekend_peak < weekday_peak


class TestRoadSegment:
    def test_distance_to_midpoint(self):
        a = TRONDHEIM
        b = TRONDHEIM.destination(90.0, 1000.0)
        seg = RoadSegment("r", a, b)
        mid = TRONDHEIM.destination(90.0, 500.0)
        assert seg.distance_m(mid) < 5.0

    def test_distance_offset(self):
        a = TRONDHEIM
        b = TRONDHEIM.destination(90.0, 1000.0)
        seg = RoadSegment("r", a, b)
        off = TRONDHEIM.destination(90.0, 500.0).destination(0.0, 200.0)
        assert seg.distance_m(off) == pytest.approx(200.0, rel=0.05)

    def test_distance_beyond_endpoint(self):
        a = TRONDHEIM
        b = TRONDHEIM.destination(90.0, 1000.0)
        seg = RoadSegment("r", a, b)
        past = TRONDHEIM.destination(90.0, 1500.0)
        assert seg.distance_m(past) == pytest.approx(500.0, rel=0.05)

    def test_degenerate_segment(self):
        seg = RoadSegment("pt", TRONDHEIM, TRONDHEIM)
        p = TRONDHEIM.destination(0.0, 100.0)
        assert seg.distance_m(p) == pytest.approx(100.0, rel=0.05)


class TestUrbanEnvironment:
    def make(self, roads=None):
        return UrbanEnvironment("trondheim", TRONDHEIM, seed=7, roads=roads)

    def test_deterministic_given_seed(self):
        e1, e2 = self.make(), self.make()
        assert e1.co2_ppm(ts(), TRONDHEIM) == e2.co2_ppm(ts(), TRONDHEIM)

    def test_co2_in_plausible_range(self):
        env = self.make()
        vals = [
            env.co2_ppm(ts(m, d, h), TRONDHEIM)
            for m in (1, 6)
            for d in (5, 15)
            for h in range(0, 24, 3)
        ]
        assert all(380.0 <= v <= 560.0 for v in vals)

    def test_no2_higher_near_road(self):
        road = RoadSegment(
            "main", TRONDHEIM, TRONDHEIM.destination(90.0, 2000.0)
        )
        env = self.make(roads=[road])
        t = ts(6, 14, 8)  # weekday rush hour
        near = TRONDHEIM.destination(90.0, 1000.0)  # on the road
        far = near.destination(0.0, 2000.0)
        assert env.no2_ugm3(t, near) > env.no2_ugm3(t, far)

    def test_pm25_below_pm10(self):
        env = self.make()
        samples = [(ts(1, d, h)) for d in (3, 10) for h in (6, 12, 20)]
        for t in samples:
            assert env.pm25_ugm3(t, TRONDHEIM) <= env.pm10_ugm3(t, TRONDHEIM) + 12.0

    def test_true_values_keys(self):
        truth = self.make().true_values(ts(), TRONDHEIM)
        assert set(truth) == {
            "co2_ppm",
            "no2_ugm3",
            "pm10_ugm3",
            "pm25_ugm3",
            "temperature_c",
            "pressure_hpa",
            "humidity_pct",
        }

    def test_injection_raises_levels_locally(self):
        env = self.make()
        t0 = ts(6, 14, 12)
        baseline = env.no2_ugm3(t0, TRONDHEIM)
        env.inject(
            PollutionInjection(
                center=TRONDHEIM, start=t0 - HOUR, end=t0 + HOUR, no2_ugm3=80.0
            )
        )
        assert env.no2_ugm3(t0, TRONDHEIM) == pytest.approx(baseline + 80.0, rel=0.01)
        far = TRONDHEIM.destination(0.0, 5000.0)
        assert env.no2_ugm3(t0, far) < env.no2_ugm3(t0, TRONDHEIM)

    def test_injection_time_bounded(self):
        env = self.make()
        t0 = ts(6, 14, 12)
        env.inject(
            PollutionInjection(center=TRONDHEIM, start=t0, end=t0 + HOUR, co2_ppm=100.0)
        )
        before = env.co2_ppm(t0 - 10, TRONDHEIM)
        during = env.co2_ppm(t0 + 10, TRONDHEIM)
        assert during > before + 50.0

    def test_clear_injections(self):
        env = self.make()
        t0 = ts()
        env.inject(PollutionInjection(TRONDHEIM, t0 - 10, t0 + 10, co2_ppm=500.0))
        env.clear_injections()
        assert env.co2_ppm(t0, TRONDHEIM) < 600.0
