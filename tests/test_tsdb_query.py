"""Tests for TSDB queries: aggregation, downsampling, rate, group-by."""

import numpy as np
import pytest

from repro.tsdb import (
    Downsample,
    FillPolicy,
    InvalidDownsampleSpec,
    Query,
    QueryError,
    TSDB,
    aggregators,
)


@pytest.fixture
def db():
    """Two nodes reporting every 60 s for 10 minutes."""
    db = TSDB()
    for i in range(10):
        ts = i * 60
        db.put("air.co2.ppm", ts, 400.0 + i, {"node": "a", "city": "trondheim"})
        db.put("air.co2.ppm", ts, 500.0 + i, {"node": "b", "city": "trondheim"})
    db.put("air.co2.ppm", 0, 600.0, {"node": "c", "city": "vejle"})
    return db


class TestAggregators:
    def test_avg_ignores_nan(self):
        assert aggregators.avg(np.array([1.0, np.nan, 3.0])) == 2.0

    def test_all_nan_yields_nan(self):
        assert np.isnan(aggregators.avg(np.array([np.nan])))

    def test_count(self):
        assert aggregators.count(np.array([1.0, np.nan, 3.0])) == 2.0
        assert aggregators.count(np.array([])) == 0.0

    def test_sum_empty_is_zero(self):
        assert aggregators.total(np.array([])) == 0.0

    def test_percentile(self):
        p95 = aggregators.percentile(95.0)
        vals = np.arange(1.0, 101.0)
        assert p95(vals) == pytest.approx(95.05, abs=0.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            aggregators.percentile(101.0)

    def test_unknown_aggregator(self):
        with pytest.raises(aggregators.UnknownAggregator):
            aggregators.get("nope")

    def test_first_last(self):
        vals = np.array([5.0, 1.0, 9.0])
        assert aggregators.first(vals) == 5.0
        assert aggregators.last(vals) == 9.0


class TestDownsampleSpec:
    def test_parse_minutes(self):
        ds = Downsample.parse("5m-avg")
        assert ds.width == 300
        assert ds.agg == "avg"
        assert ds.fill is FillPolicy.NONE

    def test_parse_with_fill(self):
        ds = Downsample.parse("1h-max-nan")
        assert ds.width == 3600
        assert ds.fill is FillPolicy.NAN

    def test_parse_days(self):
        assert Downsample.parse("1d-sum").width == 86400

    def test_bad_specs(self):
        for bad in ("5x-avg", "avg", "0m-avg", "5m-nope", "5m-avg-bogus"):
            with pytest.raises((InvalidDownsampleSpec, ValueError)):
                Downsample.parse(bad)

    def test_spec_round_trip(self):
        ds = Downsample.parse("5m-avg-linear")
        assert Downsample.parse(ds.spec()) == ds


class TestQueryBasics:
    def test_end_before_start(self):
        with pytest.raises(QueryError):
            Query("m", start=100, end=50)

    def test_simple_query_aggregates_across_nodes(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, tags={"city": "trondheim"}))
        series = res.single()
        # avg of node a (400+i) and node b (500+i) = 450+i
        assert series.values[0] == 450.0
        assert series.values[5] == 455.0

    def test_tag_exact_filter(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, tags={"node": "a"}))
        assert res.single().values[0] == 400.0

    def test_tag_alternation(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, tags={"node": "a|c"}))
        # At t=0: avg(400, 600) = 500.
        assert res.single().values[0] == 500.0

    def test_wildcard_tag(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, tags={"node": "*"}))
        assert len(res.single().source_series) == 3

    def test_unknown_metric_gives_empty_result(self, db):
        res = db.run(Query("nope", 0, 100))
        assert res.is_empty()
        assert len(res) == 1

    def test_group_by(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, group_by=["city"]))
        labels = {s.group_tags["city"] for s in res}
        assert labels == {"trondheim", "vejle"}

    def test_group_by_label(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, group_by=["city"]))
        labels = {s.label() for s in res}
        assert "air.co2.ppm{city=vejle}" in labels

    def test_single_raises_on_grouped(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, group_by=["node"]))
        with pytest.raises(QueryError):
            res.single()

    def test_max_aggregator(self, db):
        res = db.run(
            Query("air.co2.ppm", 0, 0, tags={"city": "trondheim"}, aggregator="max")
        )
        assert res.single().values[0] == 500.0

    def test_scanned_points_accounting(self, db):
        res = db.run(Query("air.co2.ppm", 0, 600, tags={"city": "trondheim"}))
        assert res.scanned_points == 20


class TestDownsampledQueries:
    def test_downsample_5m(self, db):
        res = db.run(
            Query(
                "air.co2.ppm",
                0,
                599,
                tags={"node": "a"},
                downsample="5m-avg",
            )
        )
        series = res.single()
        assert series.timestamps.tolist() == [0, 300]
        # First bucket: values 400..404 -> 402; second: 405..409 -> 407.
        assert series.values.tolist() == [402.0, 407.0]

    def test_downsample_fill_nan_emits_empty_buckets(self):
        db = TSDB()
        db.put("m", 0, 1.0)
        db.put("m", 900, 2.0)
        res = db.run(Query("m", 0, 1199, downsample="5m-avg-nan"))
        series = res.single()
        assert series.timestamps.tolist() == [0, 300, 600, 900]
        assert np.isnan(series.values[1])
        assert np.isnan(series.values[2])

    def test_downsample_fill_zero(self):
        db = TSDB()
        db.put("m", 0, 1.0)
        db.put("m", 600, 2.0)
        res = db.run(Query("m", 0, 899, downsample="5m-sum-zero"))
        assert res.single().values.tolist() == [1.0, 0.0, 2.0]

    def test_downsample_fill_previous(self):
        db = TSDB()
        db.put("m", 0, 5.0)
        db.put("m", 900, 7.0)
        res = db.run(Query("m", 0, 1199, downsample="5m-avg-previous"))
        assert res.single().values.tolist() == [5.0, 5.0, 5.0, 7.0]

    def test_downsample_fill_linear(self):
        db = TSDB()
        db.put("m", 0, 0.0)
        db.put("m", 900, 3.0)
        res = db.run(Query("m", 0, 1199, downsample="5m-avg-linear"))
        assert res.single().values.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_bucket_alignment(self):
        db = TSDB()
        db.put("m", 301, 1.0)  # falls in bucket [300, 600)
        res = db.run(Query("m", 0, 600, downsample="5m-avg"))
        assert res.single().timestamps.tolist() == [300]


class TestRate:
    def test_rate_of_counter(self):
        db = TSDB()
        for i, v in enumerate([0.0, 60.0, 180.0]):
            db.put("counter", i * 60, v)
        res = db.run(Query("counter", 0, 300, rate=True))
        series = res.single()
        assert series.values.tolist() == [1.0, 2.0]
        assert series.timestamps.tolist() == [60, 120]

    def test_counter_reset_clamped_to_zero(self):
        db = TSDB()
        db.put("counter", 0, 100.0)
        db.put("counter", 60, 5.0)
        res = db.run(Query("counter", 0, 60, rate=True))
        assert res.single().values.tolist() == [0.0]

    def test_rate_single_point_empty(self):
        db = TSDB()
        db.put("counter", 0, 100.0)
        assert db.run(Query("counter", 0, 60, rate=True)).is_empty()


class TestIntrospection:
    def test_metrics_listing(self, db):
        assert db.metrics() == ["air.co2.ppm"]

    def test_suggest_metrics(self, db):
        assert db.suggest_metrics("air") == ["air.co2.ppm"]
        assert db.suggest_metrics("zzz") == []

    def test_suggest_tag_values(self, db):
        assert db.suggest_tag_values("air.co2.ppm", "city") == ["trondheim", "vejle"]

    def test_last(self, db):
        latest = db.last("air.co2.ppm", {"node": "a"})
        assert len(latest) == 1
        ((key, (ts, val)),) = latest.items()
        assert ts == 540
        assert val == 409.0

    def test_counts(self, db):
        assert db.series_count == 3
        assert db.point_count == 21
        assert db.write_count == 21

    def test_delete_before_drops_empty_series(self, db):
        dropped = db.delete_before(10_000)
        assert dropped == 21
        assert db.series_count == 0
        assert db.run(Query("air.co2.ppm", 0, 600)).is_empty()
