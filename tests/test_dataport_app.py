"""End-to-end tests of the dataport pipeline (paper Fig. 2).

Sensor node → radio plane → network server → TTN/MQTT bridge → dataport
→ TSDB + twins + alarms, with the watchdog pinging the dataport.
"""

import json

import numpy as np
import pytest

from repro.dataport import AlarmKind, Dataport, TtnMqttBridge, Watchdog
from repro.geo import TRONDHEIM
from repro.lorawan import (
    Gateway,
    LoraDevice,
    NetworkServer,
    PropagationModel,
    RadioPlane,
)
from repro.mqtt import Broker
from repro.sensors import FixedInterval, SensorNode, UrbanEnvironment
from repro.simclock import HOUR, Scheduler, SimClock
from repro.tsdb import METRIC_CO2, Query, TSDB


class Pipeline:
    """Full Fig. 2 stack on one scheduler."""

    def __init__(self, n_nodes=3, seed=0, **dataport_kwargs):
        self.scheduler = Scheduler(SimClock(start=0))
        self.env = UrbanEnvironment("trondheim", TRONDHEIM, seed=7)
        self.plane = RadioPlane(
            PropagationModel(shadowing_sigma_db=0.0), np.random.default_rng(seed)
        )
        self.gateway = Gateway("gw-0", TRONDHEIM.destination(0.0, 300.0))
        self.plane.add_gateway(self.gateway)
        self.ns = NetworkServer()
        self.broker = Broker(np.random.default_rng(seed + 1))
        self.bridge = TtnMqttBridge(self.ns, self.broker, "trondheim")
        self.db = TSDB()
        self.dataport = Dataport(
            self.broker, self.db, self.scheduler, **dataport_kwargs
        )
        self.dataport.register_gateway("gw-0")

        self.nodes = []
        for i in range(n_nodes):
            loc = TRONDHEIM.destination(30.0 * i, 150.0 + 50.0 * i)
            device = LoraDevice(f"ctt-{i:02d}", loc, self.plane, sf=9)
            node = SensorNode(
                f"ctt-{i:02d}",
                loc,
                self.env,
                device,
                rng=np.random.default_rng(100 + i),
                policy=FixedInterval(300),
            )
            self.dataport.register_sensor(f"ctt-{i:02d}", (loc.lat, loc.lon), "trondheim")
            node.on_transmit(self._forward)
            # Deterministic 20 s stagger so transmissions never collide.
            node.schedule(self.scheduler, phase_s=20 * i)
            self.nodes.append(node)

    def expected_uplinks(self, i, horizon=3600):
        """Wake-ups of node ``i`` in [0, horizon]: 300+20i, then every 300 s."""
        first = 300 + 20 * i
        return 0 if first > horizon else 1 + (horizon - first) // 300

    def _forward(self, node, result, now):
        if result.uplink is not None:
            self.ns.ingest(result.uplink, result.receptions, now)

    def run(self, seconds):
        self.scheduler.run_for(seconds)


class TestEndToEnd:
    def test_uplinks_reach_the_database(self):
        p = Pipeline(n_nodes=3)
        p.run(HOUR)
        expected = sum(p.expected_uplinks(i) for i in range(3))
        assert p.dataport.stats.uplinks_processed == expected
        res = p.db.run(Query(METRIC_CO2, 0, HOUR, tags={"city": "trondheim"}))
        assert not res.is_empty()
        assert res.scanned_points == expected

    def test_tags_carry_node_and_city(self):
        p = Pipeline(n_nodes=2)
        p.run(HOUR)
        assert p.db.suggest_tag_values(METRIC_CO2, "node") == ["ctt-00", "ctt-01"]
        assert p.db.suggest_tag_values(METRIC_CO2, "city") == ["trondheim"]

    def test_twins_track_every_node(self):
        p = Pipeline(n_nodes=3)
        p.run(HOUR)
        for i in range(3):
            status = p.dataport.sensor_status(f"ctt-{i:02d}")
            assert status["uplinks"] == p.expected_uplinks(i)
            assert not status["overdue"]
        gw = p.dataport.gateway_status("gw-0")
        assert gw["frames"] == sum(p.expected_uplinks(i) for i in range(3))
        assert not gw["silent"]

    def test_gateway_outage_detected_and_grouped(self):
        p = Pipeline(n_nodes=3)
        p.run(HOUR)
        p.gateway.set_online(False)
        p.run(HOUR)
        assert p.dataport.alarms.is_active(AlarmKind.GATEWAY_OUTAGE, "gw-0")
        assert p.dataport.alarms.active(kind=AlarmKind.SENSOR_OVERDUE) == []
        snapshot = p.dataport.network_snapshot()
        assert snapshot["silent_gateways"] == ["gw-0"]
        assert len(snapshot["overdue_sensors"]) == 3

    def test_recovery_after_outage(self):
        p = Pipeline(n_nodes=2)
        p.run(HOUR)
        p.gateway.set_online(False)
        p.run(HOUR)
        p.gateway.set_online(True)
        p.run(HOUR)
        assert not p.dataport.alarms.is_active(AlarmKind.GATEWAY_OUTAGE, "gw-0")
        assert p.dataport.network_snapshot()["overdue_sensors"] == []

    def test_status_json_is_valid(self):
        p = Pipeline(n_nodes=1)
        p.run(HOUR)
        doc = json.loads(p.dataport.status_json())
        assert doc["stats"]["uplinks_processed"] == p.expected_uplinks(0)
        assert "ctt-00" in doc["sensors"]
        assert doc["sensors"]["ctt-00"]["location"] is not None

    def test_watchdog_detects_dataport_failure(self):
        p = Pipeline(n_nodes=1)
        dog = Watchdog(
            "dataport", p.dataport.ping, p.dataport.alarms, failures_to_alarm=3
        )
        dog.start(p.scheduler)
        p.run(HOUR)
        assert not dog.down
        p.dataport.healthy = False
        p.run(HOUR)
        assert dog.down
        assert p.dataport.alarms.is_active(AlarmKind.DATAPORT_DOWN, "dataport")

    def test_unhealthy_dataport_stops_writing(self):
        p = Pipeline(n_nodes=1)
        p.run(HOUR)
        written = p.dataport.stats.points_written
        p.dataport.healthy = False
        p.run(HOUR)
        assert p.dataport.stats.points_written == written

    def test_unknown_device_auto_registered(self):
        p = Pipeline(n_nodes=1)
        # A device nobody registered starts transmitting.
        device = LoraDevice("rogue-1", TRONDHEIM, p.plane, sf=9)
        node = SensorNode(
            "rogue-1", TRONDHEIM, p.env, device,
            rng=np.random.default_rng(999), policy=FixedInterval(300),
        )
        node.on_transmit(p._forward)
        node.schedule(p.scheduler, phase_s=77)
        p.run(HOUR)
        assert p.dataport.sensor_status("rogue-1") is not None

    def test_decode_errors_counted_not_fatal(self):
        p = Pipeline(n_nodes=1)
        p.broker.publish(
            "ctt/trondheim/devices/bogus/up", b"not json at all", qos=1
        )
        assert p.dataport.stats.decode_errors == 1
        p.run(HOUR)  # pipeline still works
        assert p.dataport.stats.uplinks_processed == p.expected_uplinks(0)

    def test_bridge_publishes_ttn_style_topics(self):
        p = Pipeline(n_nodes=1)
        seen = []
        client = p.broker.connect("spy")
        client.subscribe("ctt/trondheim/devices/+/up", seen.append)
        p.run(600)
        assert seen
        assert seen[0].topic == "ctt/trondheim/devices/ctt-00/up"
        doc = json.loads(seen[0].text())
        assert doc["dev_eui"] == "ctt-00"
        assert doc["gateways"][0]["id"] == "gw-0"


class TestBatchedWrites:
    """Hop 5 with a positive batch window: accumulate, flush per tick."""

    def test_windowed_mode_defers_until_tick(self):
        # Window offset from the 300 s sampling cadence so the flush
        # tick (t=400) never coincides with an uplink.
        p = Pipeline(n_nodes=1, batch_window_s=400)
        # First uplink lands at t=300; the first flush tick is t=400.
        p.run(399)
        assert p.dataport.stats.uplinks_processed == 1
        assert p.dataport.writer.pending == 8
        assert p.dataport.stats.points_written == 0
        assert p.db.point_count == 0
        p.run(1)  # the t=400 tick flushes the buffered uplink
        assert p.dataport.writer.pending == 0
        assert p.dataport.stats.points_written == 8
        assert p.db.point_count == 8

    def test_windowed_mode_matches_write_through_totals(self):
        eager = Pipeline(n_nodes=2)
        lazy = Pipeline(n_nodes=2, batch_window_s=300)
        eager.run(HOUR)
        lazy.run(HOUR)
        lazy.dataport.flush_writes()  # drain the last partial window
        assert (
            lazy.dataport.stats.points_written
            == eager.dataport.stats.points_written
        )
        q = Query(METRIC_CO2, 0, HOUR, tags={"city": "trondheim"})
        a, b = eager.db.run(q).single(), lazy.db.run(q).single()
        assert a.timestamps.tolist() == b.timestamps.tolist()
        assert a.values.tolist() == b.values.tolist()

    def test_write_through_mode_flushes_per_uplink(self):
        p = Pipeline(n_nodes=1)
        p.run(HOUR)
        assert p.dataport.writer.pending == 0
        assert p.dataport.stats.batch_flushes == p.expected_uplinks(0)
        assert p.dataport.stats.points_written == 8 * p.expected_uplinks(0)

    def test_buffer_cap_forces_early_flush(self):
        p = Pipeline(n_nodes=1, batch_window_s=HOUR, max_pending_points=16)
        p.run(HOUR - 1)  # several uplinks before the first tick
        # 8 points per uplink, cap at 16 -> flushed every second uplink.
        assert p.dataport.writer.pending < 16
        assert p.dataport.stats.points_written > 0

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(n_nodes=1, batch_window_s=-1)

    def test_status_json_reports_pending_points(self):
        p = Pipeline(n_nodes=1, batch_window_s=400)
        p.run(399)
        stats = json.loads(p.dataport.status_json())["stats"]
        assert stats["points_pending"] == 8
        assert stats["points_written"] == 0
