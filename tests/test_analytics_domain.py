"""Tests for battery analysis (Fig. 4), CO2 dynamics (Fig. 5), AQI, patterns."""

import datetime as dt

import numpy as np
import pytest

from repro.analytics import (
    anomalous_days,
    band,
    battery_deltas,
    caqi,
    charge_balance,
    correlation_study,
    diurnal_comparison,
    estimate_depletion,
    factor_attribution,
    pattern_summary,
    sub_index,
    trend,
    weekly_profile,
)
from repro.geo import TRONDHEIM
from repro.sensors import UrbanEnvironment
from repro.simclock import DAY, HOUR, from_datetime

TRD_LAT, TRD_LON = TRONDHEIM.lat, TRONDHEIM.lon


def april_start():
    return from_datetime(dt.datetime(2017, 4, 10))


def make_battery_series(days=3):
    """Synthetic day/night sawtooth: charges 10-16h, drains otherwise."""
    start = april_start()
    ts, volts = [], []
    v = 3.8
    for k in range(days * 24 * 12):
        t = start + k * 300
        hour = ((t % 86400) / 3600 + TRD_LON / 15.0) % 24.0
        v += 0.002 if 10.0 <= hour <= 16.0 else -0.0006
        v = min(4.2, max(3.0, v))
        ts.append(t)
        volts.append(v)
    return np.array(ts), np.array(volts)


class TestBatteryAnalysis:
    def test_deltas_have_flags(self):
        ts, v = make_battery_series()
        deltas = battery_deltas(ts, v, TRD_LAT, TRD_LON)
        assert len(deltas) == len(ts) - 1
        flags = {d.could_have_charged for d in deltas}
        assert flags == {True, False}  # both day and night present

    def test_charging_concentrated_in_sunlit_hours(self):
        ts, v = make_battery_series()
        balance = charge_balance(battery_deltas(ts, v, TRD_LAT, TRD_LON))
        assert balance.charging_works
        assert balance.mean_delta_sunlit_v > 0.0
        assert balance.mean_delta_dark_v < 0.0

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            battery_deltas(np.arange(5), np.arange(4.0), TRD_LAT, TRD_LON)

    def test_depletion_finite_when_draining(self):
        start = april_start()
        ts = np.arange(start, start + 2 * DAY, 300)
        v = 4.0 - (ts - start) / DAY * 0.1  # pure drain: 0.1 V/day
        est = estimate_depletion(ts, v, TRD_LAT, TRD_LON)
        assert est.days_to_empty == pytest.approx((v[-1] - 3.3) / 0.1, rel=0.05)

    def test_depletion_infinite_when_net_positive(self):
        ts, v = make_battery_series()
        est = estimate_depletion(ts, v, TRD_LAT, TRD_LON)
        assert est.days_to_empty == float("inf")

    def test_depletion_needs_data(self):
        with pytest.raises(ValueError):
            estimate_depletion(
                np.array([0]), np.array([4.0]), TRD_LAT, TRD_LON
            )


@pytest.fixture(scope="module")
def week_of_data():
    """A week of aligned CO2 / jam / weather series from the environment."""
    env = UrbanEnvironment("trondheim", TRONDHEIM, seed=7)
    start = april_start()
    ts = np.arange(start, start + 7 * DAY, 300, dtype=np.int64)
    co2 = np.array([env.co2_ppm(int(t), TRONDHEIM) for t in ts])
    jam = np.array([env.traffic(int(t)) * 10.0 for t in ts])
    wind = np.array([env.weather.wind_speed_ms(int(t)) for t in ts])
    temp = np.array([env.weather.temperature_c(int(t)) for t in ts])
    hum = np.array([env.weather.humidity_pct(int(t)) for t in ts])
    return ts, co2, jam, wind, temp, hum


class TestCo2Dynamics:
    def test_no_apparent_correlation(self, week_of_data):
        """Fig. 5's headline: CO2 and jam factor do not track each other."""
        ts, co2, jam, *_ = week_of_data
        study = correlation_study(co2, jam, cadence_s=300)
        assert study.no_apparent_correlation
        assert abs(study.pearson_r) < 0.5

    def test_lag_scan_does_not_rescue_traffic(self, week_of_data):
        """Within physically meaningful transport lags (<= 2 h) traffic
        still fails to predict CO2.  (Beyond that, any two diurnal
        signals can be phase-aligned into spurious correlation, which is
        why the scan is bounded.)"""
        ts, co2, jam, *_ = week_of_data
        study = correlation_study(co2, jam, cadence_s=300, max_lag_s=2 * HOUR)
        assert abs(study.best_lag_r) < 0.5

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            correlation_study(np.ones(20), np.ones(19), 300)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            correlation_study(np.ones(5), np.ones(5), 300)

    def test_factor_attribution_shows_complex_dynamics(self, week_of_data):
        """Adding weather + daily harmonics must explain much more
        variance than traffic alone (the paper's conclusion)."""
        ts, co2, jam, wind, temp, hum = week_of_data
        result = factor_attribution(
            co2,
            {
                "jam_factor": jam,
                "wind_speed": wind,
                "temperature": temp,
                "humidity": hum,
            },
            ts,
        )
        assert result.r2_traffic_only < 0.3
        assert result.r2_full > result.r2_traffic_only + 0.2
        assert result.complex_dynamics

    def test_factor_attribution_requires_jam(self, week_of_data):
        ts, co2, *_ = week_of_data
        with pytest.raises(ValueError):
            factor_attribution(co2, {"wind": co2}, ts)

    def test_diurnal_patterns_differ(self, week_of_data):
        """Fig. 5's visual: the two daily patterns peak at different
        hours (CO2 pre-dawn from respiration/inversion; traffic at rush
        hour)."""
        ts, co2, jam, *_ = week_of_data
        comp = diurnal_comparison(co2, jam, ts)
        assert comp.co2_peak_hour != comp.jam_peak_hour
        # Traffic double peak lands morning or evening rush.
        assert comp.jam_peak_hour in (7, 8, 9, 15, 16, 17)
        assert comp.profile_correlation < 0.5


class TestAqi:
    def test_sub_index_interpolates(self):
        assert sub_index("no2_ugm3", 0.0) == 0.0
        assert sub_index("no2_ugm3", 50.0) == 25.0
        assert sub_index("no2_ugm3", 75.0) == pytest.approx(37.5)

    def test_sub_index_extrapolates_above_top(self):
        assert sub_index("no2_ugm3", 500.0) > 100.0

    def test_unknown_quantity(self):
        with pytest.raises(ValueError):
            sub_index("co2_ppm", 400.0)

    def test_bands(self):
        assert band(10.0) == "very_low"
        assert band(60.0) == "medium"
        assert band(150.0) == "very_high"

    def test_caqi_takes_worst_pollutant(self):
        result = caqi({"no2_ugm3": 10.0, "pm10_ugm3": 60.0, "pm25_ugm3": 5.0})
        assert result.dominant == "pm10_ugm3"
        assert result.band == "medium"
        assert result.sub_indices["no2_ugm3"] == 5.0

    def test_caqi_ignores_unknown_keys(self):
        result = caqi({"no2_ugm3": 40.0, "co2_ppm": 420.0, "battery_v": 3.9})
        assert result.dominant == "no2_ugm3"

    def test_caqi_requires_some_pollutant(self):
        with pytest.raises(ValueError):
            caqi({"co2_ppm": 400.0})


class TestPatterns:
    def test_weekly_profile_shape(self, week_of_data):
        ts, co2, jam, *_ = week_of_data
        profile = weekly_profile(jam, ts)
        assert profile.matrix.shape == (7, 24)
        # Traffic: weekdays busier than weekends.
        assert profile.weekday_vs_weekend_ratio() > 1.1

    def test_trend_detects_slope(self):
        ts = np.arange(0, 30 * DAY, HOUR, dtype=np.int64)
        rng = np.random.default_rng(12)
        v = 100.0 + (ts / DAY) * 2.0 + rng.normal(0, 1.0, ts.size)
        t = trend(v, ts)
        assert t.slope_per_day == pytest.approx(2.0, rel=0.05)
        assert t.significant

    def test_trend_flat_not_significant(self):
        ts = np.arange(0, 30 * DAY, HOUR, dtype=np.int64)
        rng = np.random.default_rng(13)
        v = 100.0 + rng.normal(0, 1.0, ts.size)
        assert not trend(v, ts).significant

    def test_trend_needs_samples(self):
        with pytest.raises(ValueError):
            trend(np.ones(4), np.arange(4))

    def test_anomalous_days_found(self):
        ts = np.arange(0, 30 * DAY, HOUR, dtype=np.int64)
        rng = np.random.default_rng(14)
        v = 50.0 + rng.normal(0, 1.0, ts.size)
        day10 = (ts // DAY) == 10
        v[day10] += 30.0  # a pollution event day
        found = anomalous_days(v, ts)
        assert found
        assert found[0].day_start == 10 * DAY
        assert found[0].z_score > 2.5

    def test_pattern_summary_bundle(self, week_of_data):
        ts, co2, *_ = week_of_data
        summary = pattern_summary(co2, ts)
        assert set(summary) == {
            "diurnal_peak_hour",
            "diurnal_amplitude",
            "weekday_weekend_ratio",
            "trend",
            "anomalous_days",
        }
        assert summary["diurnal_amplitude"] > 0
