"""Tests for digital twins, alarm grouping, and the watchdog."""

import numpy as np
import pytest

from repro.dataport import (
    ActorSystem,
    Alarm,
    AlarmKind,
    AlarmLog,
    BackendTwin,
    FleetSupervisor,
    GatewayHeard,
    SensorTwin,
    Severity,
    TwinConfig,
    UplinkObserved,
    Watchdog,
)
from repro.lorawan import (
    GatewayReception,
    Measurements,
    ReceivedUplink,
    Uplink,
    encode_measurements,
)
from repro.simclock import Scheduler, SimClock


def make_uplink(node_id="ctt-01", ts=0, battery_v=3.9, gateways=("gw-0",), fcnt=0):
    m = Measurements(420.0, 20.0, 15.0, 8.0, 5.0, 1013.0, 80.0, battery_v, fcnt)
    uplink = Uplink(node_id, fcnt, encode_measurements(m), sf=9, sent_at=ts)
    receptions = tuple(
        GatewayReception(gw, -90.0 - 3.0 * i, 5.0) for i, gw in enumerate(gateways)
    )
    received = ReceivedUplink(uplink, receptions, received_at=ts)
    return UplinkObserved(node_id, received, m)


class Harness:
    """A fleet supervisor + twins on a simulated clock."""

    def __init__(self, config=None):
        self.scheduler = Scheduler(SimClock(start=0))
        self.system = ActorSystem(self.scheduler)
        self.alarms = AlarmLog()
        self.config = config or TwinConfig()
        self.fleet_ref = self.system.spawn(
            lambda: FleetSupervisor(self.config, self.alarms), "fleet"
        )

    @property
    def fleet(self) -> FleetSupervisor:
        return self.system.actor_instance(self.fleet_ref)

    def add_sensor(self, node_id):
        return self.fleet.register_sensor(node_id)

    def add_gateway(self, gw_id):
        return self.fleet.register_gateway(gw_id)

    def sensor_twin(self, node_id) -> SensorTwin:
        return self.system.actor_instance(self.fleet.sensor_refs[node_id])

    def feed(self, node_id, ts, battery_v=3.9, gateways=("gw-0",), fcnt=0):
        msg = make_uplink(node_id, ts, battery_v, gateways, fcnt)
        self.fleet.sensor_refs[node_id].tell(msg)
        for gw in gateways:
            if gw in self.fleet.gateway_refs:
                self.fleet.gateway_refs[gw].tell(GatewayHeard(gw, ts, -90.0))


class TestSensorTwin:
    def test_tracks_state_from_uplinks(self):
        h = Harness()
        h.add_sensor("ctt-01")
        h.feed("ctt-01", ts=0)
        twin = h.sensor_twin("ctt-01")
        assert twin.last_seen == 0
        assert twin.uplinks == 1
        assert twin.last_battery_v == pytest.approx(3.9, abs=0.01)
        assert twin.recent_gateways == {"gw-0"}

    def test_overdue_after_cycles_to_failure(self):
        h = Harness()
        h.add_sensor("ctt-01")
        h.feed("ctt-01", ts=0, fcnt=0)
        h.feed("ctt-01", ts=300, fcnt=1)
        # Silence for 3+ cycles of 300 s -> overdue at ~1200 s.
        h.scheduler.run_until(2000)
        assert h.sensor_twin("ctt-01").overdue
        assert h.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-01")

    def test_not_overdue_while_reporting(self):
        h = Harness()
        h.add_sensor("ctt-01")
        for i in range(10):
            h.scheduler.run_until(i * 300)
            h.feed("ctt-01", ts=i * 300, fcnt=i)
        assert not h.sensor_twin("ctt-01").overdue
        assert not h.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-01")

    def test_recovery_clears_alarm(self):
        h = Harness()
        h.add_sensor("ctt-01")
        h.feed("ctt-01", ts=0, fcnt=0)
        h.scheduler.run_until(2000)
        assert h.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-01")
        h.feed("ctt-01", ts=2000, fcnt=1)
        assert not h.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-01")
        assert not h.sensor_twin("ctt-01").overdue

    def test_adaptive_interval_model_prevents_false_alarm(self):
        """A low-battery node slows to 3x interval; the twin must mirror
        that and NOT flag it at the nominal cadence (the paper's point)."""
        h = Harness()
        h.add_sensor("ctt-01")
        # battery 3.5 V -> SoC ~0.14 -> low -> expected interval 900 s.
        h.feed("ctt-01", ts=0, battery_v=3.5, fcnt=0)
        h.feed("ctt-01", ts=900, battery_v=3.5, fcnt=1)
        # 2000 s since last: only ~1.2 adaptive cycles -> healthy.
        h.scheduler.run_until(2900)
        assert not h.sensor_twin("ctt-01").overdue
        # But at nominal 300 s cadence 2000 s would be 6.7 cycles:
        assert (2900 - 900) / 300 > h.config.cycles_to_failure

    def test_battery_alarms(self):
        h = Harness()
        h.add_sensor("ctt-01")
        h.feed("ctt-01", ts=0, battery_v=3.5, fcnt=0)
        assert h.alarms.is_active(AlarmKind.BATTERY_LOW, "ctt-01")
        h.feed("ctt-01", ts=300, battery_v=3.2, fcnt=1)
        assert h.alarms.is_active(AlarmKind.BATTERY_CRITICAL, "ctt-01")
        h.feed("ctt-01", ts=600, battery_v=4.0, fcnt=2)
        assert not h.alarms.is_active(AlarmKind.BATTERY_LOW, "ctt-01")
        assert not h.alarms.is_active(AlarmKind.BATTERY_CRITICAL, "ctt-01")

    def test_never_seen_sensor_not_flagged(self):
        h = Harness()
        h.add_sensor("ctt-01")
        h.scheduler.run_until(10_000)
        assert not h.sensor_twin("ctt-01").overdue

    def test_status_snapshot(self):
        h = Harness()
        h.add_sensor("ctt-01")
        h.feed("ctt-01", ts=0)
        status = h.sensor_twin("ctt-01").status()
        assert status["node_id"] == "ctt-01"
        assert status["uplinks"] == 1
        assert status["gateways"] == ["gw-0"]


class TestGatewayTwinAndGrouping:
    def test_gateway_silence_raises_outage(self):
        h = Harness()
        h.add_gateway("gw-0")
        h.fleet.gateway_refs["gw-0"].tell(GatewayHeard("gw-0", 0, -90.0))
        h.scheduler.run_until(2000)
        assert h.alarms.is_active(AlarmKind.GATEWAY_OUTAGE, "gw-0")

    def test_gateway_recovery_clears(self):
        h = Harness()
        h.add_gateway("gw-0")
        h.fleet.gateway_refs["gw-0"].tell(GatewayHeard("gw-0", 0, -90.0))
        h.scheduler.run_until(2000)
        h.fleet.gateway_refs["gw-0"].tell(GatewayHeard("gw-0", 2000, -90.0))
        assert not h.alarms.is_active(AlarmKind.GATEWAY_OUTAGE, "gw-0")

    def test_gateway_outage_groups_sensor_alarms(self):
        """12 sensors behind one gateway: its outage must produce ONE
        gateway alarm, not 12 sensor alarms (the hierarchy's purpose)."""
        h = Harness()
        h.add_gateway("gw-0")
        nodes = [f"ctt-{i:02d}" for i in range(12)]
        for n in nodes:
            h.add_sensor(n)
            h.feed(n, ts=0, gateways=("gw-0",))
        # Everything goes silent (gateway died).
        h.scheduler.run_until(5000)
        assert h.alarms.is_active(AlarmKind.GATEWAY_OUTAGE, "gw-0")
        sensor_alarms = h.alarms.active(kind=AlarmKind.SENSOR_OVERDUE)
        assert sensor_alarms == []  # grouped away
        assert len(h.fleet.overdue_sensors()) == 12

    def test_sensor_failure_with_live_gateway_is_per_sensor(self):
        h = Harness()
        h.add_gateway("gw-0")
        h.add_sensor("ctt-01")
        h.add_sensor("ctt-02")
        h.feed("ctt-01", ts=0, fcnt=0)
        h.feed("ctt-02", ts=0, fcnt=0)
        # ctt-02 keeps reporting (gateway alive), ctt-01 dies.
        for i in range(1, 20):
            h.scheduler.run_until(i * 300)
            h.feed("ctt-02", ts=i * 300, fcnt=i)
        assert h.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-01")
        assert not h.alarms.is_active(AlarmKind.GATEWAY_OUTAGE, "gw-0")

    def test_multi_gateway_sensor_not_grouped_if_one_gateway_alive(self):
        h = Harness()
        h.add_gateway("gw-0")
        h.add_gateway("gw-1")
        h.add_sensor("ctt-01")
        h.feed("ctt-01", ts=0, gateways=("gw-0", "gw-1"), fcnt=0)
        # Only gw-0 dies; gw-1 still hears other traffic.
        for i in range(1, 20):
            h.scheduler.run_until(i * 300)
            h.fleet.gateway_refs["gw-1"].tell(
                GatewayHeard("gw-1", i * 300, -95.0)
            )
        # ctt-01 silent, but it could reach gw-1 -> per-sensor alarm.
        assert h.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-01")


class TestBackendTwin:
    def test_backend_down_on_missing_heartbeat(self):
        sched = Scheduler(SimClock(start=0))
        system = ActorSystem(sched)
        alarms = AlarmLog()
        ref = system.spawn(lambda: BackendTwin(alarms, timeout_s=600), "backend")
        ref.tell(BackendTwin.Heartbeat("mqtt", 0))
        sched.run_until(1000)
        assert alarms.is_active(AlarmKind.MQTT_DOWN, "mqtt")
        ref.tell(BackendTwin.Heartbeat("mqtt", 1000))
        assert not alarms.is_active(AlarmKind.MQTT_DOWN, "mqtt")


class TestAlarmLog:
    def test_dedup(self):
        log = AlarmLog()
        a = Alarm(AlarmKind.BATTERY_LOW, "n1", Severity.WARNING, "low", 0)
        assert log.raise_alarm(a)
        assert not log.raise_alarm(a)
        assert log.suppressed == 1
        assert len(log) == 1
        assert len(log.history) == 1

    def test_clear_and_reraise(self):
        log = AlarmLog()
        a = Alarm(AlarmKind.BATTERY_LOW, "n1", Severity.WARNING, "low", 0)
        log.raise_alarm(a)
        assert log.clear(AlarmKind.BATTERY_LOW, "n1")
        assert not log.clear(AlarmKind.BATTERY_LOW, "n1")
        assert log.raise_alarm(a)  # new incident after clear
        assert len(log.history) == 2

    def test_severity_filter_and_ordering(self):
        log = AlarmLog()
        log.raise_alarm(Alarm(AlarmKind.BATTERY_LOW, "a", Severity.WARNING, "", 5))
        log.raise_alarm(Alarm(AlarmKind.GATEWAY_OUTAGE, "b", Severity.CRITICAL, "", 9))
        active = log.active(min_severity=Severity.CRITICAL)
        assert [a.source for a in active] == ["b"]
        assert [a.source for a in log.active()] == ["b", "a"]

    def test_clear_source(self):
        log = AlarmLog()
        log.raise_alarm(Alarm(AlarmKind.BATTERY_LOW, "n", Severity.WARNING, "", 0))
        log.raise_alarm(Alarm(AlarmKind.SENSOR_OVERDUE, "n", Severity.WARNING, "", 0))
        assert log.clear_source("n") == 2
        assert len(log) == 0

    def test_listener(self):
        log = AlarmLog()
        seen = []
        log.on_alarm(seen.append)
        log.raise_alarm(Alarm(AlarmKind.BATTERY_LOW, "n", Severity.WARNING, "", 0))
        assert len(seen) == 1

    def test_counts_by_kind(self):
        log = AlarmLog()
        log.raise_alarm(Alarm(AlarmKind.BATTERY_LOW, "a", Severity.WARNING, "", 0))
        log.raise_alarm(Alarm(AlarmKind.BATTERY_LOW, "b", Severity.WARNING, "", 0))
        assert log.counts_by_kind()[AlarmKind.BATTERY_LOW] == 2


class TestWatchdog:
    def test_alarm_after_consecutive_failures(self):
        alarms = AlarmLog()
        alive = {"ok": True}
        dog = Watchdog("dataport", lambda: alive["ok"], alarms, failures_to_alarm=3)
        sched = Scheduler(SimClock(start=0))
        dog.start(sched)
        sched.run_until(300)
        assert not dog.down
        alive["ok"] = False
        sched.run_until(300 + 3 * 60)
        assert dog.down
        assert alarms.is_active(AlarmKind.DATAPORT_DOWN, "dataport")
        assert dog.stats.incidents == 1

    def test_recovery_clears(self):
        alarms = AlarmLog()
        alive = {"ok": False}
        dog = Watchdog("dataport", lambda: alive["ok"], alarms, failures_to_alarm=1)
        dog.check(0)
        assert dog.down
        alive["ok"] = True
        dog.check(60)
        assert not dog.down
        assert not alarms.is_active(AlarmKind.DATAPORT_DOWN, "dataport")

    def test_ping_exception_counts_as_failure(self):
        alarms = AlarmLog()

        def bad_ping():
            raise ConnectionError("refused")

        dog = Watchdog("x", bad_ping, alarms, failures_to_alarm=1)
        assert dog.check(0) is False
        assert dog.down

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog("x", lambda: True, AlarmLog(), failures_to_alarm=0)

    def test_single_flap_does_not_alarm(self):
        alarms = AlarmLog()
        outcomes = iter([False, True, True])
        dog = Watchdog("x", lambda: next(outcomes), alarms, failures_to_alarm=3)
        dog.check(0)
        dog.check(60)
        assert not dog.down
        assert dog.stats.failures == 1
