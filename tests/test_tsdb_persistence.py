"""Tests for TSDB persistence (line protocol, WAL, snapshot) and retention."""

import io

import pytest

from repro.tsdb import (
    DataPoint,
    DeleteBefore,
    Downsample,
    LogCorruption,
    LogWriter,
    Query,
    RetentionPolicy,
    ShardedTSDB,
    TSDB,
    dumps,
    format_delete_before,
    format_point,
    iter_entries,
    iter_log,
    load,
    parse_entry,
    parse_line,
    snapshot,
)


def make_point(metric="m", ts=100, val=1.5, tags=None):
    return DataPoint.make(metric, ts, val, tags or {"node": "a"})


class TestLineProtocol:
    def test_format_and_parse_round_trip(self):
        p = make_point(val=3.14159, tags={"node": "ctt-01", "city": "vejle"})
        line = format_point(p)
        parsed = parse_line(line)
        assert parsed == p

    def test_format_without_tags(self):
        p = DataPoint.make("m", 1, 2.0)
        assert format_point(p) == "m 1 2.0"

    def test_parse_skips_blank_and_comments(self):
        assert parse_line("") is None
        assert parse_line("   ") is None
        assert parse_line("# a comment") is None

    def test_parse_errors(self):
        for bad in ("m", "m 1", "m xx 1.0", "m 1 abc", "m 1 2.0 notag"):
            with pytest.raises(LogCorruption):
                parse_line(bad, lineno=7)

    def test_corruption_carries_lineno(self):
        with pytest.raises(LogCorruption) as exc:
            parse_line("garbage", lineno=42)
        assert exc.value.lineno == 42

    def test_float_precision_survives(self):
        p = DataPoint.make("m", 1, 0.1 + 0.2)
        assert parse_line(format_point(p)).value == p.value


class TestLogWriterAndLoad:
    def test_wal_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        points = [make_point(ts=i, val=float(i)) for i in range(50)]
        with LogWriter(path) as writer:
            writer.comment("header")
            n = writer.write_many(points)
        assert n == 50
        db = load(path)
        assert db.point_count == 50

    def test_append_mode(self, tmp_path):
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write(make_point(ts=1))
        with LogWriter(path) as w:
            w.write(make_point(ts=2))
        assert load(path).point_count == 2

    def test_load_strict_raises_on_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nGARBAGE LINE\nm 3 4.0\n")
        with pytest.raises(LogCorruption):
            load(path)

    def test_load_lenient_skips_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nGARBAGE LINE\nm 3 4.0\n")
        db = load(path, strict=False)
        assert db.point_count == 2

    def test_truncated_tail_recovery(self, tmp_path):
        """Simulates an unclean shutdown cutting the last line short."""
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nm 2 3.0\nm 3 4")  # last line has no value sep
        db = load(path, strict=False)
        assert db.point_count == 3  # "m 3 4" actually parses: value=4
        path.write_text("m 1 2.0\nm 2 3.0\nm 3")  # truly truncated
        db = load(path, strict=False)
        assert db.point_count == 2

    def test_iter_log_from_handle(self):
        buf = io.StringIO("m 1 2.0\nm 2 3.0\n")
        points = list(iter_log(buf))
        assert [p.timestamp for p in points] == [1, 2]


class TestSnapshot:
    def test_snapshot_round_trip(self, tmp_path):
        db = TSDB()
        for i in range(20):
            db.put("a.b", i, float(i), {"n": "x"})
            db.put("c.d", i, float(-i))
        path = tmp_path / "snap.log"
        n = snapshot(db, path)
        assert n == 40
        restored = load(path)
        assert restored.point_count == 40
        assert restored.metrics() == ["a.b", "c.d"]

    def test_snapshot_compacts_duplicates(self, tmp_path):
        db = TSDB()
        db.put("m", 1, 1.0)
        db.put("m", 1, 2.0)  # overwrite
        path = tmp_path / "snap.log"
        assert snapshot(db, path) == 1
        assert load(path).run(Query("m", 0, 10)).single().values.tolist() == [2.0]

    def test_dumps_round_trip(self):
        db = TSDB()
        db.put("m", 1, 1.0, {"a": "b"})
        text = dumps(db)
        restored = load(io.StringIO(text))
        assert restored.point_count == 1


class TestDeleteBeforeMarkers:
    """Replay of logs where retention markers interleave with batch
    blocks — the seed suite never exercised this, and it is exactly the
    path that depends on the index pruning of ``TSDB.delete_before``
    (dead series must not leave ``_by_metric``/``_by_tag`` entries
    behind when a restore re-applies retention)."""

    def test_marker_round_trip(self):
        for marker in (DeleteBefore(500), DeleteBefore(500, ".rollup")):
            assert parse_entry(format_delete_before(marker)) == marker

    def test_marker_parse_errors(self):
        for bad in (
            "!delete_after 5",
            "!delete_before",
            "!delete_before xx",
            "!delete_before 5 6 7",
            "!delete_before 5 keep=.rollup",
            "!delete_before 5 exclude=",
        ):
            with pytest.raises(LogCorruption):
                parse_entry(bad, lineno=3)

    def test_writer_emits_replayable_marker(self, tmp_path):
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write(make_point(ts=1))
            w.write(make_point(ts=2))
            w.delete_before(2)
        entries = list(iter_entries(path))
        assert entries[-1] == DeleteBefore(2)
        assert w.written == 2  # markers are not points
        assert load(path).exact_point_count() == 1

    def test_replay_interleaved_batches_and_markers(self, tmp_path):
        """Log = batch block · marker · batch block · marker: the replay
        must apply each deletion at its position in the stream, so
        points re-written *after* a marker survive it."""
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            # batch block 1: two series, out of order
            w.write_many(
                [
                    make_point("m.a", ts, float(ts), {"node": "a"})
                    for ts in (30, 10, 20)
                ]
            )
            w.write_many([make_point("m.b", ts, 1.0, {"node": "b"}) for ts in (5, 15)])
            w.delete_before(20)  # drops every point with ts < 20
            # batch block 2: m.a gets older data back-filled post-marker
            w.write_many([make_point("m.a", 12, 99.0, {"node": "a"})])
            w.delete_before(11)
        db = load(path)
        # Live-process reference: same operations applied directly.
        ref = TSDB()
        for ts in (30, 10, 20):
            ref.put("m.a", ts, float(ts), {"node": "a"})
        for ts in (5, 15):
            ref.put("m.b", ts, 1.0, {"node": "b"})
        ref.delete_before(20)
        ref.put("m.a", 12, 99.0, {"node": "a"})
        ref.delete_before(11)
        assert dumps(db) == dumps(ref)
        sl = db.run(Query("m.a", 0, 100)).single()
        assert sl.timestamps.tolist() == [12, 20, 30]
        assert sl.values.tolist() == [99.0, 20.0, 30.0]

    def test_replay_prunes_emptied_series_from_indexes(self, tmp_path):
        """Guards the PR 1 index-prune fix under restore: a series fully
        deleted by a marker must vanish from the metric and tag indexes
        of the replayed database, not just lose its points."""
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write_many([make_point("dead.metric", ts, 1.0, {"node": "x"}) for ts in (1, 2)])
            w.write_many([make_point("live.metric", ts, 2.0, {"node": "y"}) for ts in (1, 200)])
            w.delete_before(100)
        db = load(path)
        assert db.metrics() == ["live.metric"]
        assert db.suggest_tag_values("dead.metric", "node") == []
        assert db.series_count == 1
        # The pruned state round-trips: snapshot of the replay is clean.
        assert "dead.metric" not in dumps(db)

    def test_replay_marker_exclude_suffix(self, tmp_path):
        """Rollup series named in the marker's exclude= survive replayed
        retention, exactly as in the live RetentionPolicy pass."""
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write_many([make_point("m.raw", ts, 1.0) for ts in (10, 20)])
            w.write_many([make_point("m.raw.rollup", 0, 1.5)])
            w.delete_before(1_000, exclude_suffix=".rollup")
        db = load(path)
        assert db.metrics() == ["m.raw.rollup"]

    def test_replay_into_sharded_store(self, tmp_path):
        """The same marker log replays identically into a sharded store
        (retention fans out, index pruning happens per shard)."""
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            for i in range(40):
                w.write(make_point(f"m.{i % 5}", i, float(i), {"node": f"n{i % 3}"}))
            w.delete_before(25)
            for i in range(10):
                w.write(make_point(f"m.{i % 5}", 100 + i, float(i), {"node": "n9"}))
        single = load(path)
        sharded = load(path, into=ShardedTSDB(3))
        assert dumps(sharded) == dumps(single)
        assert sharded.metrics() == single.metrics()

    def test_iter_log_still_yields_only_points(self, tmp_path):
        """Back-compat: point-level consumers skip markers silently."""
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write(make_point(ts=1))
            w.delete_before(5)
            w.write(make_point(ts=9))
        assert [p.timestamp for p in iter_log(path)] == [1, 9]

    def test_lenient_mode_skips_corrupt_markers(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\n!delete_before notanumber\nm 9 3.0\n")
        with pytest.raises(LogCorruption):
            load(path)
        db = load(path, strict=False)
        assert db.exact_point_count() == 2


class TestRetention:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(raw_max_age=0)

    def test_enforce_drops_old_points(self):
        db = TSDB()
        for t in range(0, 1000, 100):
            db.put("m", t, float(t))
        policy = RetentionPolicy(raw_max_age=500)
        result = policy.enforce(db, now=1000)
        assert result.cutoff == 500
        assert result.dropped_points == 5
        remaining = db.run(Query("m", 0, 1000)).single()
        assert remaining.timestamps.min() == 500

    def test_enforce_with_rollup(self):
        db = TSDB()
        for t in range(0, 7200, 300):
            db.put("m", t, 10.0, {"n": "x"})
        policy = RetentionPolicy(
            raw_max_age=3600, rollup=Downsample.parse("1h-avg")
        )
        result = policy.enforce(db, now=7200)
        assert result.rolled_points > 0
        rolled = db.run(Query("m.rollup", 0, 7200, tags={"n": "x"}))
        assert not rolled.is_empty()
        assert rolled.single().values[0] == 10.0

    def test_rollup_series_never_rerolled(self):
        db = TSDB()
        for t in range(0, 7200, 300):
            db.put("m", t, 10.0)
        policy = RetentionPolicy(raw_max_age=1800, rollup=Downsample.parse("1h-avg"))
        policy.enforce(db, now=7200)
        policy.enforce(db, now=7200)
        assert "m.rollup.rollup" not in db.metrics()
