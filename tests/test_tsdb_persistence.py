"""Tests for TSDB persistence (line protocol, WAL, snapshot) and retention."""

import io

import pytest

from repro.tsdb import (
    DataPoint,
    Downsample,
    LogCorruption,
    LogWriter,
    Query,
    RetentionPolicy,
    TSDB,
    dumps,
    format_point,
    iter_log,
    load,
    parse_line,
    snapshot,
)


def make_point(metric="m", ts=100, val=1.5, tags=None):
    return DataPoint.make(metric, ts, val, tags or {"node": "a"})


class TestLineProtocol:
    def test_format_and_parse_round_trip(self):
        p = make_point(val=3.14159, tags={"node": "ctt-01", "city": "vejle"})
        line = format_point(p)
        parsed = parse_line(line)
        assert parsed == p

    def test_format_without_tags(self):
        p = DataPoint.make("m", 1, 2.0)
        assert format_point(p) == "m 1 2.0"

    def test_parse_skips_blank_and_comments(self):
        assert parse_line("") is None
        assert parse_line("   ") is None
        assert parse_line("# a comment") is None

    def test_parse_errors(self):
        for bad in ("m", "m 1", "m xx 1.0", "m 1 abc", "m 1 2.0 notag"):
            with pytest.raises(LogCorruption):
                parse_line(bad, lineno=7)

    def test_corruption_carries_lineno(self):
        with pytest.raises(LogCorruption) as exc:
            parse_line("garbage", lineno=42)
        assert exc.value.lineno == 42

    def test_float_precision_survives(self):
        p = DataPoint.make("m", 1, 0.1 + 0.2)
        assert parse_line(format_point(p)).value == p.value


class TestLogWriterAndLoad:
    def test_wal_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        points = [make_point(ts=i, val=float(i)) for i in range(50)]
        with LogWriter(path) as writer:
            writer.comment("header")
            n = writer.write_many(points)
        assert n == 50
        db = load(path)
        assert db.point_count == 50

    def test_append_mode(self, tmp_path):
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write(make_point(ts=1))
        with LogWriter(path) as w:
            w.write(make_point(ts=2))
        assert load(path).point_count == 2

    def test_load_strict_raises_on_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nGARBAGE LINE\nm 3 4.0\n")
        with pytest.raises(LogCorruption):
            load(path)

    def test_load_lenient_skips_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nGARBAGE LINE\nm 3 4.0\n")
        db = load(path, strict=False)
        assert db.point_count == 2

    def test_truncated_tail_recovery(self, tmp_path):
        """Simulates an unclean shutdown cutting the last line short."""
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nm 2 3.0\nm 3 4")  # last line has no value sep
        db = load(path, strict=False)
        assert db.point_count == 3  # "m 3 4" actually parses: value=4
        path.write_text("m 1 2.0\nm 2 3.0\nm 3")  # truly truncated
        db = load(path, strict=False)
        assert db.point_count == 2

    def test_iter_log_from_handle(self):
        buf = io.StringIO("m 1 2.0\nm 2 3.0\n")
        points = list(iter_log(buf))
        assert [p.timestamp for p in points] == [1, 2]


class TestSnapshot:
    def test_snapshot_round_trip(self, tmp_path):
        db = TSDB()
        for i in range(20):
            db.put("a.b", i, float(i), {"n": "x"})
            db.put("c.d", i, float(-i))
        path = tmp_path / "snap.log"
        n = snapshot(db, path)
        assert n == 40
        restored = load(path)
        assert restored.point_count == 40
        assert restored.metrics() == ["a.b", "c.d"]

    def test_snapshot_compacts_duplicates(self, tmp_path):
        db = TSDB()
        db.put("m", 1, 1.0)
        db.put("m", 1, 2.0)  # overwrite
        path = tmp_path / "snap.log"
        assert snapshot(db, path) == 1
        assert load(path).run(Query("m", 0, 10)).single().values.tolist() == [2.0]

    def test_dumps_round_trip(self):
        db = TSDB()
        db.put("m", 1, 1.0, {"a": "b"})
        text = dumps(db)
        restored = load(io.StringIO(text))
        assert restored.point_count == 1


class TestRetention:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(raw_max_age=0)

    def test_enforce_drops_old_points(self):
        db = TSDB()
        for t in range(0, 1000, 100):
            db.put("m", t, float(t))
        policy = RetentionPolicy(raw_max_age=500)
        result = policy.enforce(db, now=1000)
        assert result.cutoff == 500
        assert result.dropped_points == 5
        remaining = db.run(Query("m", 0, 1000)).single()
        assert remaining.timestamps.min() == 500

    def test_enforce_with_rollup(self):
        db = TSDB()
        for t in range(0, 7200, 300):
            db.put("m", t, 10.0, {"n": "x"})
        policy = RetentionPolicy(
            raw_max_age=3600, rollup=Downsample.parse("1h-avg")
        )
        result = policy.enforce(db, now=7200)
        assert result.rolled_points > 0
        rolled = db.run(Query("m.rollup", 0, 7200, tags={"n": "x"}))
        assert not rolled.is_empty()
        assert rolled.single().values[0] == 10.0

    def test_rollup_series_never_rerolled(self):
        db = TSDB()
        for t in range(0, 7200, 300):
            db.put("m", t, 10.0)
        policy = RetentionPolicy(raw_max_age=1800, rollup=Downsample.parse("1h-avg"))
        policy.enforce(db, now=7200)
        policy.enforce(db, now=7200)
        assert "m.rollup.rollup" not in db.metrics()
