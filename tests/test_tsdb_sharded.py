"""Equivalence suite: shard count is semantically invisible.

For randomized workloads (out-of-order, duplicate, multi-metric/tag
points, mixed ingestion APIs), every observable of ``ShardedTSDB(n)`` —
queries, aggregation, downsampling, retention, snapshots, suggestions —
must be byte-identical to a single-store ``TSDB`` fed the same stream,
for n ∈ {1, 2, 4, 7}.  All randomness is seeded: the suite is fully
deterministic (the CI sharded-equivalence step relies on that).
"""

import numpy as np
import pytest

from repro.dataport.app import BatchingTsdbWriter
from repro.tsdb import (
    BatchBuilder,
    Downsample,
    PointBatch,
    Query,
    RetentionPolicy,
    SeriesKey,
    ShardedTSDB,
    TimeSeriesStore,
    TSDB,
    dumps,
    load,
    scatter_batch,
    shard_for_key,
)

SHARD_COUNTS = (1, 2, 4, 7)

METRICS = ("air.co2.ppm", "air.no2.ugm3", "weather.temperature.c", "traffic.count.vehicles")
NODES = tuple(f"ctt-{i:02d}" for i in range(9))
CITIES = ("trondheim", "vejle")


def random_rows(seed: int, n: int = 3_000):
    """(metric, ts, value, tags) rows: clustered timestamps force
    duplicates, a late fraction forces out-of-order arrival."""
    rng = np.random.default_rng(seed)
    metrics = rng.integers(0, len(METRICS), size=n)
    nodes = rng.integers(0, len(NODES), size=n)
    cities = rng.integers(0, len(CITIES), size=n)
    ts = rng.integers(0, 5_000, size=n) * 60  # coarse grid -> duplicates
    late = rng.random(n) < 0.05
    ts[late] -= 720  # out-of-order retransmits
    values = rng.normal(400.0, 25.0, size=n)
    return [
        (
            METRICS[int(m)],
            int(t),
            float(v),
            {"node": NODES[int(nd)], "city": CITIES[int(c)]},
        )
        for m, t, v, nd, c in zip(metrics, ts, values, nodes, cities)
    ]


def ingest_mixed(db: TimeSeriesStore, rows) -> None:
    """Feed one stream through all ingest APIs: per-point puts, columnar
    batches, and put_series, in the same order for every store."""
    third = len(rows) // 3
    for metric, ts, value, tags in rows[:third]:
        db.put(metric, ts, value, tags)
    builder = BatchBuilder()
    for metric, ts, value, tags in rows[third : 2 * third]:
        builder.add(metric, ts, value, tags)
    db.put_batch(builder.build())
    for metric, ts, value, tags in rows[2 * third :]:
        db.put_series(metric, [ts], [value], tags)


def build_pair(n: int, seed: int = 2018, rows=None) -> tuple[TSDB, ShardedTSDB]:
    rows = rows if rows is not None else random_rows(seed)
    single, sharded = TSDB(), ShardedTSDB(n)
    ingest_mixed(single, rows)
    ingest_mixed(sharded, rows)
    return single, sharded


def assert_results_identical(a, b):
    """Two QueryResults are byte-identical (timestamps, values, grouping)."""
    assert len(a) == len(b)
    assert a.scanned_points == b.scanned_points
    for ra, rb in zip(a, b):
        assert ra.metric == rb.metric
        assert dict(ra.group_tags) == dict(rb.group_tags)
        assert ra.source_series == rb.source_series
        assert np.array_equal(ra.timestamps, rb.timestamps)
        assert np.array_equal(ra.values, rb.values, equal_nan=True)


QUERIES = [
    Query("air.co2.ppm", 0, 400_000),
    Query("air.co2.ppm", 50_000, 200_000, tags={"city": "trondheim"}),
    Query("air.no2.ugm3", 0, 400_000, tags={"node": "*"}, aggregator="sum"),
    Query("air.no2.ugm3", 0, 400_000, tags={"node": "ctt-01|ctt-04"}, aggregator="max"),
    Query("weather.temperature.c", 0, 400_000, group_by=["node"]),
    Query("air.co2.ppm", 0, 400_000, group_by=["city", "node"], aggregator="min"),
    Query("air.co2.ppm", 0, 400_000, downsample="5m-avg"),
    Query("weather.temperature.c", 0, 400_000, downsample="1h-max", group_by=["city"]),
    Query("traffic.count.vehicles", 0, 400_000, rate=True),
    Query("no.such.metric", 0, 400_000),
]


@pytest.mark.parametrize("n", SHARD_COUNTS)
class TestEquivalence:
    def test_snapshot_byte_identical(self, n):
        single, sharded = build_pair(n)
        assert dumps(sharded) == dumps(single)

    def test_counts_and_catalog(self, n):
        single, sharded = build_pair(n)
        assert sharded.series_count == single.series_count
        assert sharded.exact_point_count() == single.exact_point_count()
        assert sharded.write_count == single.write_count
        assert sharded.metrics() == single.metrics()
        for metric in single.metrics():
            assert sharded.series_for_metric(metric) == single.series_for_metric(metric)
            assert sharded.suggest_tag_values(metric, "node") == (
                single.suggest_tag_values(metric, "node")
            )
        assert sharded.suggest_metrics("air.") == single.suggest_metrics("air.")

    def test_queries_identical(self, n):
        single, sharded = build_pair(n)
        for query in QUERIES:
            assert_results_identical(single.run(query), sharded.run(query))

    def test_last_identical(self, n):
        single, sharded = build_pair(n)
        for metric in METRICS:
            assert sharded.last(metric) == single.last(metric)
            assert sharded.last(metric, {"city": "vejle"}) == (
                single.last(metric, {"city": "vejle"})
            )

    def test_delete_before_identical(self, n):
        single, sharded = build_pair(n)
        for cutoff in (60_000, 150_000, 10**9):  # last one empties both
            assert sharded.delete_before(cutoff) == single.delete_before(cutoff)
            assert dumps(sharded) == dumps(single)
            # Index pruning matches too: dead series leave no metric behind.
            assert sharded.metrics() == single.metrics()
        assert sharded.metrics() == []

    def test_retention_policy_identical(self, n):
        single, sharded = build_pair(n)
        policy = RetentionPolicy(raw_max_age=100_000, rollup=Downsample.parse("1h-avg"))
        ra = policy.enforce(single, now=250_000)
        rb = policy.enforce(sharded, now=250_000)
        assert (ra.dropped_points, ra.rolled_points, ra.cutoff) == (
            rb.dropped_points,
            rb.rolled_points,
            rb.cutoff,
        )
        assert dumps(sharded) == dumps(single)

    def test_query_convenience_wrappers(self, n):
        single, sharded = build_pair(n)
        a = single.query("air.co2.ppm", 0, 400_000, tags={"city": "vejle"})
        b = sharded.query("air.co2.ppm", 0, 400_000, tags={"city": "vejle"})
        assert_results_identical(a, b)
        ra = single.query_range("air.co2.ppm", 0, 400_000, downsample="5m-avg")
        rb = sharded.query_range("air.co2.ppm", 0, 400_000, downsample="5m-avg")
        assert np.array_equal(ra.timestamps, rb.timestamps)
        assert np.array_equal(ra.values, rb.values, equal_nan=True)


class TestRouting:
    def test_every_series_lands_on_its_hash_shard(self):
        _, sharded = build_pair(4)
        seen = 0
        for i, shard in enumerate(sharded.shards):
            for metric in shard.metrics():
                for key in shard.series_for_metric(metric):
                    assert shard_for_key(key, 4) == i
                    seen += 1
        assert seen == sharded.series_count

    def test_routing_is_instance_independent(self):
        a, b = ShardedTSDB(7), ShardedTSDB(7)
        key = a.put("m.x", 1, 1.0, {"node": "n1"})
        assert b.shard_of(key) == a.shard_of(key) == shard_for_key(key, 7)
        assert a.shard_for("m.x", {"node": "n1"}) == a.shard_of(key)

    def test_scatter_batch_routes_like_put_batch(self):
        rows = random_rows(7, n=500)
        builder = BatchBuilder()
        for metric, ts, value, tags in rows:
            builder.add(metric, ts, value, tags)
        batch = builder.build()
        parts = scatter_batch(batch, 4)
        assert sum(len(p) for p in parts) == len(batch)
        via_scatter = ShardedTSDB(4)
        for i, part in enumerate(parts):
            if not part.is_empty():
                for key in part.keys:
                    assert shard_for_key(key, 4) == i
            via_scatter.shards[i].put_batch(part)
        via_route = ShardedTSDB(4)
        via_route.put_batch(batch)
        assert dumps(via_scatter) == dumps(via_route)

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ValueError):
            ShardedTSDB(0)
        with pytest.raises(ValueError):
            key = SeriesKey.make("m")
            shard_for_key(key, 0)


class TestInterface:
    def test_both_stores_satisfy_protocol(self):
        assert isinstance(TSDB(), TimeSeriesStore)
        assert isinstance(ShardedTSDB(2), TimeSeriesStore)

    def test_batching_writer_drop_in(self):
        """The dataport's hop-5 writer works unchanged on a sharded store."""
        db = ShardedTSDB(4)
        writer = BatchingTsdbWriter(db, max_pending=64)
        for metric, ts, value, tags in random_rows(11, n=200):
            writer.add(metric, ts, value, tags)
        writer.flush()
        assert writer.written == 200
        assert db.write_count == 200
        single = TSDB()
        w2 = BatchingTsdbWriter(single, max_pending=64)
        for metric, ts, value, tags in random_rows(11, n=200):
            w2.add(metric, ts, value, tags)
        w2.flush()
        assert dumps(db) == dumps(single)

    def test_load_into_sharded(self, tmp_path):
        single, sharded = build_pair(3)
        path = tmp_path / "snap.log"
        from repro.tsdb import snapshot

        snapshot(single, path)
        restored = load(path, into=ShardedTSDB(3))
        assert dumps(restored) == dumps(sharded)


class TestPerShardPersistence:
    def test_snapshot_restore_round_trip(self, tmp_path):
        _, sharded = build_pair(4)
        total = sharded.snapshot_to_dir(tmp_path / "snap")
        assert total == sharded.exact_point_count()
        restored = ShardedTSDB.restore_from_dir(tmp_path / "snap")
        assert restored.num_shards == 4
        assert dumps(restored) == dumps(sharded)
        for orig, back in zip(sharded.shards, restored.shards):
            assert dumps(back) == dumps(orig)

    def test_restore_detects_misrouted_files(self, tmp_path):
        _, sharded = build_pair(4)
        snap = tmp_path / "snap"
        sharded.snapshot_to_dir(snap)
        # Swap two non-empty shard files: routing validation must fire.
        files = sorted(
            p for p in snap.iterdir() if p.stat().st_size > 40
        )
        assert len(files) >= 2, "workload should populate at least two shards"
        a, b = files[0], files[1]
        tmp = a.read_text()
        a.write_text(b.read_text())
        b.write_text(tmp)
        with pytest.raises(ValueError, match="routes to"):
            ShardedTSDB.restore_from_dir(snap)

    def test_restore_missing_shard_fails(self, tmp_path):
        _, sharded = build_pair(4)
        snap = tmp_path / "snap"
        sharded.snapshot_to_dir(snap)
        (snap / "shard-2-of-4.log").unlink()
        with pytest.raises(ValueError, match="missing shards"):
            ShardedTSDB.restore_from_dir(snap)

    def test_restore_empty_dir_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedTSDB.restore_from_dir(tmp_path)


class TestShardLocality:
    def test_put_batch_routes_columns_not_points(self):
        """A batch touching k series does k column writes, all shard-local."""
        db = ShardedTSDB(4)
        batch = PointBatch.from_points(
            []
        )
        assert db.put_batch(batch) == 0  # empty batch is a no-op
        builder = BatchBuilder()
        for i in range(100):
            builder.add("m.a", i, float(i), {"node": f"n{i % 5}"})
        db.put_batch(builder.build())
        assert db.series_count == 5
        # Each series is wholly owned by one shard.
        owners = {}
        for i, shard in enumerate(db.shards):
            for key in shard.series_for_metric("m.a"):
                assert key not in owners
                owners[key] = i
        assert len(owners) == 5


class TestPerShardRetention:
    """Satellite: distinct `delete_before` horizons per shard, with WAL
    markers that replay faithfully through `restore_from_dir`."""

    def test_distinct_horizons_per_shard(self):
        from repro.tsdb import PerShardRetention

        _, db = build_pair(3)
        now = 5_000 * 60
        horizons = (100_000, None, 250_000)
        policies = tuple(
            RetentionPolicy(raw_max_age=h) if h is not None else None
            for h in horizons
        )
        before = [sh.exact_point_count() for sh in db.shards]
        results = PerShardRetention(policies).enforce(db, now)

        assert results[1] is None
        assert db.shards[1].exact_point_count() == before[1]  # exempt shard
        for i in (0, 2):
            cutoff = now - horizons[i]
            assert results[i].cutoff == cutoff
            for _key, sl in db.shards[i].iter_series():
                assert len(sl) == 0 or int(sl.timestamps[0]) >= cutoff
            # And the per-shard pass matches the single-store primitive.
            assert results[i].dropped_points == before[i] - db.shards[
                i
            ].exact_point_count()

    def test_rollups_route_through_the_coordinator(self):
        from repro.tsdb import PerShardRetention

        _, db = build_pair(4)
        now = 5_000 * 60
        policy = RetentionPolicy(
            raw_max_age=150_000, rollup=Downsample.parse("1h-avg")
        )
        PerShardRetention((policy,) * 4).enforce(db, now)
        rollup_keys = [
            key
            for metric in db.metrics()
            if metric.endswith(".rollup")
            for key in db.series_for_metric(metric)
        ]
        assert rollup_keys
        # Every rollup series lives in the shard its key hash-routes to,
        # even when its *source* raw series lived in a different shard.
        for key in rollup_keys:
            owner = db.shard_of(key)
            assert key in db.shards[owner]._stores
            raw = SeriesKey.make(
                key.metric.removesuffix(".rollup"), key.tag_dict()
            )
            if shard_for_key(raw, 4) != owner:
                break
        else:
            pytest.fail("expected at least one rollup routed off-shard")

    def test_cross_shard_rollups_survive_other_shards_deletes(self):
        """A rollup written while enforcing shard i may hash-route to
        shard j; shard j's own delete pass (even with no rollup in its
        policy) must spare it, both within one pass and on re-runs."""
        from repro.tsdb import PerShardRetention

        _, db = build_pair(2)
        now = 5_000 * 60
        retention = PerShardRetention(
            (
                RetentionPolicy(
                    raw_max_age=100_000, rollup=Downsample.parse("1h-avg")
                ),
                RetentionPolicy(raw_max_age=100_000),  # no rollup of its own
            )
        )
        results = retention.enforce(db, now)
        assert results[0].rolled_points > 0
        rollup_keys = [
            key
            for metric in db.metrics()
            if metric.endswith(".rollup")
            for key in db.series_for_metric(metric)
        ]
        # Rolled history landed on both shards and none of it was eaten
        # by the sibling shard's plain delete.
        assert {db.shard_of(k) for k in rollup_keys} == {0, 1}
        assert sum(len(db.series_slice(k)) for k in rollup_keys) == results[
            0
        ].rolled_points
        # A second pass (nothing new to roll) must not erode them either.
        again = retention.enforce(db, now)
        assert again[0].rolled_points == 0
        assert sum(len(db.series_slice(k)) for k in rollup_keys) == results[
            0
        ].rolled_points

    def test_mixed_rollup_suffixes_rejected(self):
        from repro.tsdb import PerShardRetention

        _, db = build_pair(2)
        retention = PerShardRetention(
            (
                RetentionPolicy(
                    raw_max_age=1, rollup=Downsample.parse("1h-avg")
                ),
                RetentionPolicy(
                    raw_max_age=1,
                    rollup=Downsample.parse("1h-avg"),
                    rollup_suffix=".agg",
                ),
            )
        )
        with pytest.raises(ValueError, match="mixed rollup suffixes"):
            retention.enforce(db, 10)

    @pytest.mark.parametrize("with_rollup", (False, True))
    def test_wal_markers_replay_through_restore_from_dir(
        self, tmp_path, with_rollup
    ):
        from repro.tsdb import LogWriter, PerShardRetention

        _, db = build_pair(3)
        now = 5_000 * 60
        rollup = Downsample.parse("1h-avg") if with_rollup else None
        policies = (
            RetentionPolicy(raw_max_age=100_000, rollup=rollup),
            None,
            RetentionPolicy(raw_max_age=250_000),
        )
        snap = tmp_path / "snap"
        db.snapshot_to_dir(snap)  # pre-retention state on disk

        # Live enforcement appends one `!delete_before` marker per shard
        # WAL (plus any rollup points, mirrored to their owning shard's
        # log); a shard-by-shard replay must land on the live state.
        writers = [
            LogWriter(snap / f"shard-{i}-of-3.log") for i in range(3)
        ]
        results = PerShardRetention(policies).enforce(db, now, wal=writers)
        for w in writers:
            w.close()
        if with_rollup:
            assert results[0].rolled_points > 0

        restored = ShardedTSDB.restore_from_dir(snap)
        assert dumps(restored) == dumps(db)
        assert restored.exact_point_count() == db.exact_point_count()
