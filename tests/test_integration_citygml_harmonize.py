"""Tests for the CityGML model and the harmonization layer."""

import datetime as dt

import numpy as np
import pytest

from repro.geo import GeoPoint, TRONDHEIM, VEJLE
from repro.integration import (
    Building,
    CityGmlError,
    Harmonizer,
    HereTrafficConnector,
    NiluStation,
    generate_city_model,
    parse_citygml,
    write_citygml,
)
from repro.sensors import RoadSegment, UrbanEnvironment
from repro.simclock import DAY, HOUR, from_datetime
from repro.tsdb import TSDB


def ts(month=6, day=14, hour=0):
    return from_datetime(dt.datetime(2017, month, day, hour))


class TestCityModel:
    def test_generation_deterministic(self):
        m1 = generate_city_model("vejle", VEJLE, seed=5)
        m2 = generate_city_model("vejle", VEJLE, seed=5)
        assert len(m1) == len(m2)
        assert m1.buildings[0].height_m == m2.buildings[0].height_m

    def test_generation_size(self):
        model = generate_city_model("vejle", VEJLE, seed=5, blocks=4,
                                    buildings_per_block=3)
        assert len(model) == 4 * 4 * 3

    def test_heights_plausible(self):
        model = generate_city_model("vejle", VEJLE, seed=5)
        heights = [b.height_m for b in model.buildings]
        assert 3.0 < np.median(heights) < 15.0
        assert max(heights) < 80.0

    def test_building_validation(self):
        with pytest.raises(ValueError):
            Building("x", (VEJLE, VEJLE), 10.0)
        with pytest.raises(ValueError):
            Building("x", (VEJLE, VEJLE.destination(0, 10),
                           VEJLE.destination(90, 10)), -1.0)

    def test_footprint_area(self):
        origin = VEJLE
        square = (
            origin,
            origin.destination(90.0, 20.0),
            origin.destination(90.0, 20.0).destination(0.0, 10.0),
            origin.destination(0.0, 10.0),
        )
        b = Building("sq", square, 5.0)
        assert b.footprint_area_m2() == pytest.approx(200.0, rel=0.02)

    def test_nearest_building(self):
        model = generate_city_model("vejle", VEJLE, seed=5)
        b = model.nearest_building(VEJLE)
        assert b.centroid.distance_to(VEJLE) < 250.0

    def test_buildings_within(self):
        model = generate_city_model("vejle", VEJLE, seed=5)
        near = model.buildings_within(VEJLE, 200.0)
        far = model.buildings_within(VEJLE, 2000.0)
        assert 0 < len(near) < len(far) <= len(model)

    def test_bounds_contain_center(self):
        model = generate_city_model("vejle", VEJLE, seed=5)
        assert model.bounds().contains(VEJLE)


class TestCityGmlRoundTrip:
    def test_round_trip(self):
        model = generate_city_model("vejle", VEJLE, seed=5, blocks=3,
                                    buildings_per_block=2)
        text = write_citygml(model)
        restored = parse_citygml(text)
        assert restored.name == "vejle"
        assert len(restored) == len(model)
        for a, b in zip(model.buildings, restored.buildings):
            assert a.building_id == b.building_id
            assert a.height_m == pytest.approx(b.height_m)
            assert a.function == b.function
            assert len(a.footprint) == len(b.footprint)
            assert a.centroid.distance_to(b.centroid) < 0.5

    def test_malformed_xml_rejected(self):
        with pytest.raises(CityGmlError):
            parse_citygml("<not-closed")

    def test_wrong_root_rejected(self):
        with pytest.raises(CityGmlError):
            parse_citygml("<foo/>")

    def test_missing_geometry_rejected(self):
        text = (
            '<core:CityModel xmlns:core="http://www.opengis.net/citygml/2.0" '
            'xmlns:bldg="http://www.opengis.net/citygml/building/2.0">'
            "<core:cityObjectMember><bldg:Building>"
            "<bldg:measuredHeight>5</bldg:measuredHeight>"
            "</bldg:Building></core:cityObjectMember></core:CityModel>"
        )
        with pytest.raises(CityGmlError):
            parse_citygml(text)


class TestHarmonizer:
    def make(self):
        env = UrbanEnvironment("trondheim", TRONDHEIM, seed=7)
        db = TSDB()
        h = Harmonizer(db)
        segments = [
            RoadSegment("E6", TRONDHEIM, TRONDHEIM.destination(90.0, 1500.0))
        ]
        h.register(NiluStation("NO1", TRONDHEIM, env, seed=2))
        h.register(HereTrafficConnector(env, segments, seed=3))
        return env, db, h

    def test_sync_writes_all_sources(self):
        env, db, h = self.make()
        report = h.sync(ts(6, 14, 0), ts(6, 14, 6))
        assert report.observations > 0
        assert set(report.per_source) == {"nilu:NO1", "here:traffic"}
        assert "ext.no2_ugm3" in db.metrics()
        assert "ext.jam_factor" in db.metrics()

    def test_provenance_tags(self):
        env, db, h = self.make()
        h.sync(ts(6, 14, 0), ts(6, 14, 2))
        sources = db.suggest_tag_values("ext.no2_ugm3", "source")
        assert sources == ["nilu_NO1"]
        stypes = db.suggest_tag_values("ext.jam_factor", "stype")
        assert stypes == ["traffic_flow"]

    def test_aligned_frame_common_grid(self):
        env, db, h = self.make()
        h.sync(ts(6, 14, 0), ts(6, 14, 12))
        frame = h.aligned_frame(
            [
                ("ext.no2_ugm3", {"source": "nilu_NO1"}),
                ("ext.jam_factor", {}),
            ],
            ts(6, 14, 0),
            ts(6, 14, 12),
            cadence_s=HOUR,
        )
        assert len(frame) == 13
        assert set(frame.columns) == {"ext.no2_ugm3", "ext.jam_factor"}
        assert frame.complete_rows().sum() >= 11

    def test_correlation_no2_traffic_positive(self):
        """NO2 is traffic-dominated in the environment model, so the
        harmonized frame must show a clear positive correlation (unlike
        CO2 in Fig. 5)."""
        env, db, h = self.make()
        h.sync(ts(6, 12, 0), ts(6, 16, 0))  # four weekdays
        frame = h.aligned_frame(
            [
                ("ext.no2_ugm3", {"source": "nilu_NO1"}),
                ("ext.jam_factor", {}),
            ],
            ts(6, 12, 0),
            ts(6, 16, 0),
            cadence_s=HOUR,
        )
        r = frame.correlation("ext.no2_ugm3", "ext.jam_factor")
        assert r > 0.35

    def test_correlation_insufficient_data_nan(self):
        env, db, h = self.make()
        frame = h.aligned_frame(
            [("ext.no2_ugm3", {}), ("ext.jam_factor", {})],
            ts(6, 14, 0),
            ts(6, 14, 1),
            cadence_s=HOUR,
        )
        assert np.isnan(frame.correlation("ext.no2_ugm3", "ext.jam_factor"))
