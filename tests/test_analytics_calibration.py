"""Tests for calibration, outlier detection, and imputation."""

import numpy as np
import pytest

from repro.analytics import (
    CalibrationError,
    accuracy,
    diurnal_impute,
    diurnal_profile,
    drift_against_peers,
    fit_colocation,
    gap_report,
    interpolate_gaps,
    propagate_network,
    rolling_mad_outliers,
    stuck_values,
)


def truth_series(n=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 400.0 + 15.0 * np.sin(2 * np.pi * t / 48.0) + rng.normal(0, 2.0, n)


class TestAccuracy:
    def test_perfect_sensor(self):
        ref = truth_series()
        report = accuracy(ref, ref)
        assert report.rmse == 0.0
        assert report.bias == 0.0
        assert report.correlation == pytest.approx(1.0)

    def test_biased_sensor(self):
        ref = truth_series()
        report = accuracy(ref + 10.0, ref)
        assert report.bias == pytest.approx(10.0)
        assert report.correlation == pytest.approx(1.0)

    def test_nan_pairs_dropped(self):
        ref = truth_series()
        sensor = ref.copy()
        sensor[:10] = np.nan
        report = accuracy(sensor, ref)
        assert report.n == ref.size - 10

    def test_misaligned_raises(self):
        with pytest.raises(CalibrationError):
            accuracy(np.zeros(5), np.zeros(6))

    def test_too_few_pairs(self):
        with pytest.raises(CalibrationError):
            accuracy(np.array([1.0, np.nan]), np.array([1.0, 2.0]))


class TestColocation:
    def test_recovers_known_transfer(self):
        rng = np.random.default_rng(1)
        ref = truth_series(seed=1)
        raw = (ref - 20.0) / 1.05 + rng.normal(0, 0.5, ref.size)
        cal = fit_colocation(raw, ref)
        assert cal.gain == pytest.approx(1.05, rel=0.03)
        # Noise on the regressor attenuates the fit slightly (classic
        # errors-in-variables), so the offset tolerance is generous.
        assert cal.offset == pytest.approx(20.0, abs=8.0)
        corrected = cal.apply(raw)
        assert accuracy(corrected, ref).rmse < accuracy(raw, ref).rmse

    def test_min_pairs_enforced(self):
        with pytest.raises(CalibrationError):
            fit_colocation(np.arange(10.0), np.arange(10.0), min_pairs=24)

    def test_constant_raw_rejected(self):
        with pytest.raises(CalibrationError):
            fit_colocation(np.ones(50), truth_series(50))

    def test_calibration_improves_low_cost_sensor(self):
        """The paper's premise: a drifted low-cost sensor becomes usable
        after co-location calibration."""
        rng = np.random.default_rng(2)
        ref = truth_series(500, seed=2)
        raw = ref * 1.08 + 25.0 + rng.normal(0, 8.0, ref.size)
        before = accuracy(raw, ref)
        cal = fit_colocation(raw[:200], ref[:200])  # fit on first chunk
        after = accuracy(cal.apply(raw[200:]), ref[200:])  # evaluate out-of-sample
        assert before.rmse > 25.0
        assert after.rmse < 10.0


class TestNetworkPropagation:
    def test_offsets_align_medians(self):
        rng = np.random.default_rng(3)
        ref = truth_series(300, seed=3)
        anchor_raw = ref / 1.02 - 5.0 + rng.normal(0, 1.0, 300)
        cal = fit_colocation(anchor_raw, ref)
        series = {
            "anchor": anchor_raw,
            "nodeB": ref / 1.02 + 30.0 + rng.normal(0, 1.0, 300),
            "nodeC": ref / 1.02 - 40.0 + rng.normal(0, 1.0, 300),
        }
        net = propagate_network("anchor", cal, series)
        for node in ("nodeB", "nodeC"):
            corrected = net.for_node(node).apply(series[node])
            assert abs(np.median(corrected) - np.median(ref)) < 5.0

    def test_lower_certainty_encoded(self):
        rng = np.random.default_rng(4)
        ref = truth_series(300, seed=4)
        anchor_raw = ref + rng.normal(0, 1.0, 300)
        cal = fit_colocation(anchor_raw, ref)
        net = propagate_network(
            "anchor", cal, {"anchor": anchor_raw, "nodeB": ref + 10.0}
        )
        assert net.for_node("nodeB").residual_sigma == pytest.approx(
            2.0 * cal.residual_sigma
        )

    def test_missing_anchor_raises(self):
        cal = fit_colocation(truth_series(100), truth_series(100))
        with pytest.raises(CalibrationError):
            propagate_network("anchor", cal, {"other": np.ones(30)})

    def test_sparse_node_falls_back_to_anchor(self):
        ref = truth_series(100, seed=5)
        cal = fit_colocation(ref, ref)
        net = propagate_network(
            "anchor", cal, {"anchor": ref, "sparse": np.full(100, np.nan)}
        )
        assert net.for_node("sparse") is cal


class TestOutliers:
    def test_spike_detected(self):
        v = truth_series(200, seed=6)
        v[100] += 200.0
        report = rolling_mad_outliers(v, window=24, threshold=5.0)
        assert 100 in report.indices.tolist()

    def test_clean_series_no_outliers(self):
        v = truth_series(200, seed=7)
        report = rolling_mad_outliers(v, window=24, threshold=6.0)
        assert len(report) == 0

    def test_nan_tolerated(self):
        v = truth_series(100, seed=8)
        v[40:45] = np.nan
        v[60] += 300.0
        report = rolling_mad_outliers(v)
        assert 60 in report.indices.tolist()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            rolling_mad_outliers(np.ones(10), window=2)

    def test_stuck_run_found(self):
        v = truth_series(100, seed=9)
        v[30:45] = 412.0
        runs = stuck_values(v, min_run=6)
        assert len(runs) == 1
        assert runs[0].start_index == 30
        assert runs[0].length == 15

    def test_short_repeats_ignored(self):
        v = np.array([1.0, 2.0, 2.0, 3.0])
        assert stuck_values(v, min_run=3) == []

    def test_stuck_validation(self):
        with pytest.raises(ValueError):
            stuck_values(np.ones(5), min_run=1)

    def test_drift_against_peers(self):
        n = 400
        t = np.arange(n) * 3600.0
        base = truth_series(n, seed=10)
        series = {
            "a": base + 1.0,
            "b": base - 1.0,
            "c": base + 0.5,
            "decaying": base + (t / 86400.0) * 3.0,  # 3 units/day drift
        }
        reports = drift_against_peers(series, t, max_drift_per_day=1.0)
        by_node = {r.node_id: r for r in reports}
        assert by_node["decaying"].suspicious
        assert by_node["decaying"].drift_per_day == pytest.approx(3.0, rel=0.2)
        assert not by_node["a"].suspicious

    def test_drift_needs_three_nodes(self):
        with pytest.raises(ValueError):
            drift_against_peers({"a": np.ones(5)}, np.arange(5.0))


class TestImputation:
    def test_gap_report(self):
        v = np.array([1.0, np.nan, np.nan, 2.0, np.nan, 3.0])
        report = gap_report(v, cadence_s=300)
        assert len(report) == 2
        assert report.gaps[0].length == 2
        assert report.longest_gap_s == 600
        assert report.missing_fraction == pytest.approx(0.5)

    def test_gap_at_end(self):
        v = np.array([1.0, np.nan, np.nan])
        report = gap_report(v, cadence_s=60)
        assert report.gaps[-1].length == 2

    def test_interpolate_short_gaps_only(self):
        v = np.array([0.0, np.nan, 2.0, np.nan, np.nan, np.nan, np.nan, 7.0])
        out = interpolate_gaps(v, max_gap=2)
        assert out[1] == pytest.approx(1.0)
        assert np.isnan(out[4])  # 4-long gap left alone

    def test_interpolate_edge_gap_left_alone(self):
        v = np.array([np.nan, 1.0, 2.0])
        out = interpolate_gaps(v, max_gap=3)
        assert np.isnan(out[0])

    def test_diurnal_profile_shape(self):
        ts = np.arange(0, 7 * 86400, 3600)
        v = 10.0 + 5.0 * np.sin(2 * np.pi * (ts % 86400) / 86400.0)
        profile = diurnal_profile(v, ts)
        assert profile.shape == (24,)
        assert np.nanargmax(profile) == 6  # sin peaks a quarter-day in

    def test_diurnal_impute_fills_long_gap(self):
        ts = np.arange(0, 7 * 86400, 3600)
        rng = np.random.default_rng(11)
        v = 10.0 + 5.0 * np.sin(2 * np.pi * (ts % 86400) / 86400.0)
        v += rng.normal(0, 0.2, v.size)
        corrupted = v.copy()
        corrupted[50:74] = np.nan  # a full missing day
        filled = diurnal_impute(corrupted, ts)
        assert np.isfinite(filled).all()
        # The imputed day must resemble the true diurnal shape.
        err = np.abs(filled[50:74] - v[50:74])
        assert err.mean() < 1.5

    def test_diurnal_impute_all_nan_unchanged(self):
        ts = np.arange(0, 86400, 3600)
        v = np.full(24, np.nan)
        out = diurnal_impute(v, ts)
        assert np.isnan(out).all()
