"""Tests for intervention what-ifs (street closures, transit, spillover)."""

import datetime as dt

import numpy as np
import pytest

from repro.core import (
    StreetClosure,
    TransitImprovement,
    apply_intervention,
    assess_intervention,
)
from repro.geo import TRONDHEIM
from repro.sensors import RoadSegment, UrbanEnvironment
from repro.simclock import from_datetime


def roads():
    return [
        RoadSegment("main", TRONDHEIM.destination(200.0, 1000.0),
                    TRONDHEIM.destination(20.0, 1000.0), traffic_weight=1.0),
        RoadSegment("east", TRONDHEIM.destination(90.0, 400.0),
                    TRONDHEIM.destination(90.0, 2000.0), traffic_weight=0.5),
        RoadSegment("west", TRONDHEIM.destination(270.0, 400.0),
                    TRONDHEIM.destination(270.0, 2000.0), traffic_weight=0.5),
    ]


def rush_hours():
    base = from_datetime(dt.datetime(2017, 6, 14))  # a Wednesday
    return [base + h * 3600 for h in (7, 8, 9, 15, 16, 17)]


class TestInterventionDefinitions:
    def test_closure_validation(self):
        with pytest.raises(ValueError):
            StreetClosure("main", reduction=0.0)
        with pytest.raises(ValueError):
            StreetClosure("main", evasion_fraction=1.5)

    def test_transit_validation(self):
        with pytest.raises(ValueError):
            TransitImprovement(traffic_reduction=0.0)
        with pytest.raises(ValueError):
            TransitImprovement(traffic_reduction=1.0)


class TestApplyIntervention:
    def test_full_closure_zeroes_target(self):
        out = apply_intervention(roads(), StreetClosure("main"))
        by_name = {r.name: r for r in out}
        assert by_name["main"].traffic_weight == 0.0

    def test_evasion_spills_to_other_roads(self):
        out = apply_intervention(
            roads(), StreetClosure("main", evasion_fraction=0.6)
        )
        by_name = {r.name: r for r in out}
        # 1.0 removed, 0.6 evades, split by existing weight (0.5 / 0.5).
        assert by_name["east"].traffic_weight == pytest.approx(0.5 + 0.3)
        assert by_name["west"].traffic_weight == pytest.approx(0.5 + 0.3)

    def test_no_evasion_traffic_disappears(self):
        out = apply_intervention(
            roads(), StreetClosure("main", evasion_fraction=0.0)
        )
        total_before = sum(r.traffic_weight for r in roads())
        total_after = sum(r.traffic_weight for r in out)
        assert total_after == pytest.approx(total_before - 1.0)

    def test_partial_reduction(self):
        out = apply_intervention(
            roads(), StreetClosure("main", reduction=0.5, evasion_fraction=0.0)
        )
        by_name = {r.name: r for r in out}
        assert by_name["main"].traffic_weight == pytest.approx(0.5)

    def test_unknown_road(self):
        with pytest.raises(ValueError):
            apply_intervention(roads(), StreetClosure("nope"))

    def test_transit_scales_everything(self):
        out = apply_intervention(roads(), TransitImprovement(0.2))
        for before, after in zip(roads(), out):
            assert after.traffic_weight == pytest.approx(
                before.traffic_weight * 0.8
            )

    def test_ordering_preserved(self):
        out = apply_intervention(roads(), StreetClosure("east"))
        assert [r.name for r in out] == ["main", "east", "west"]


class TestAssessIntervention:
    def make_env(self):
        return UrbanEnvironment("trondheim", TRONDHEIM, seed=7, roads=roads())

    def probes(self):
        return {
            "on-main": TRONDHEIM.destination(200.0, 1000.0),
            "on-east": TRONDHEIM.destination(90.0, 1200.0),
            "residential": TRONDHEIM.destination(0.0, 2500.0),
        }

    def test_validation(self):
        env = self.make_env()
        with pytest.raises(ValueError):
            assess_intervention(env, StreetClosure("main"), {}, rush_hours())
        with pytest.raises(ValueError):
            assess_intervention(env, StreetClosure("main"), self.probes(), [])

    def test_closure_improves_target_street(self):
        env = self.make_env()
        assessment = assess_intervention(
            env, StreetClosure("main"), self.probes(), rush_hours()
        )
        by_label = {i.label: i for i in assessment.impacts}
        assert by_label["on-main"].improved
        assert by_label["on-main"].no2_delta < -2.0

    def test_closure_causes_spillover(self):
        """The paper's point: evasion effects are observable elsewhere."""
        env = self.make_env()
        assessment = assess_intervention(
            env,
            StreetClosure("main", evasion_fraction=0.8),
            self.probes(),
            rush_hours(),
        )
        by_label = {i.label: i for i in assessment.impacts}
        assert by_label["on-east"].no2_delta > 0.0  # evaded traffic arrives
        assert assessment.spillover_locations

    def test_transit_improvement_helps_everywhere(self):
        env = self.make_env()
        assessment = assess_intervention(
            env, TransitImprovement(0.3), self.probes(), rush_hours()
        )
        deltas = [i.no2_delta for i in assessment.impacts]
        assert all(d <= 0.05 for d in deltas)
        assert assessment.net_no2_delta < 0.0
        assert not assessment.spillover_locations

    def test_weather_held_constant(self):
        """Deltas isolate traffic: the counterfactual shares the seed, so
        a do-nothing intervention changes nothing."""
        env = self.make_env()
        noop = StreetClosure("main", reduction=1e-9 + 0.000001)
        assessment = assess_intervention(env, noop, self.probes(), rush_hours())
        assert abs(assessment.net_no2_delta) < 0.05

    def test_summary_readable(self):
        env = self.make_env()
        assessment = assess_intervention(
            env, StreetClosure("main"), self.probes(), rush_hours()
        )
        text = assessment.summary()
        assert "on-main" in text
        assert "net mean NO2 change" in text
