"""Property-based tests (hypothesis) for the TSDB core invariants."""

import io

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.tsdb import (
    DataPoint,
    Downsample,
    Query,
    SeriesKey,
    SeriesStore,
    ShardedTSDB,
    TSDB,
    dumps,
    format_point,
    load,
    parse_line,
    shard_for_key,
)
from repro.tsdb.downsample import FillPolicy, apply as apply_downsample

timestamps = st.integers(min_value=0, max_value=2**40)
values = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
points = st.lists(st.tuples(timestamps, values), min_size=0, max_size=200)


class TestSeriesStoreProperties:
    @given(points)
    @settings(max_examples=200, deadline=None)
    def test_scan_always_sorted_and_unique(self, pts):
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        sl = store.scan()
        ts = sl.timestamps
        assert np.all(np.diff(ts) > 0)  # strictly increasing: sorted + deduped
        assert len(sl) == len({t for t, _ in pts})

    @given(points)
    @settings(max_examples=100, deadline=None)
    def test_last_write_wins(self, pts):
        store = SeriesStore()
        expected: dict[int, float] = {}
        for t, v in pts:
            store.append(t, v)
            expected[t] = v
        sl = store.scan()
        got = dict(zip(sl.timestamps.tolist(), sl.values.tolist()))
        assert got == expected

    @given(points, timestamps, timestamps)
    @settings(max_examples=100, deadline=None)
    def test_range_scan_is_filter(self, pts, a, b):
        lo, hi = min(a, b), max(a, b)
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        full = store.scan()
        ranged = store.scan(lo, hi)
        mask = (full.timestamps >= lo) & (full.timestamps <= hi)
        assert np.array_equal(ranged.timestamps, full.timestamps[mask])

    @given(points, timestamps)
    @settings(max_examples=100, deadline=None)
    def test_delete_before_counts(self, pts, cutoff):
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        before = len(store.scan())
        dropped = store.delete_before(cutoff)
        after = store.scan()
        assert dropped == before - len(after)
        assert (after.timestamps >= cutoff).all()


metric_names = st.sampled_from(["m.a", "m.b", "air.co2.ppm"])
tag_values = st.sampled_from(["n1", "n2", "n3"])


class TestRoundTripProperties:
    @given(metric_names, timestamps, values, tag_values)
    @settings(max_examples=200, deadline=None)
    def test_line_protocol_round_trip(self, metric, ts, value, node):
        p = DataPoint.make(metric, ts, value, {"node": node})
        assert parse_line(format_point(p)) == p

    @given(
        st.lists(
            st.tuples(metric_names, timestamps, values, tag_values),
            min_size=0,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dump_load_preserves_database(self, rows):
        from repro.tsdb import dumps

        db = TSDB()
        for metric, ts, value, node in rows:
            db.put(metric, ts, value, {"node": node})
        restored = load(io.StringIO(dumps(db)))
        assert restored.metrics() == db.metrics()
        assert restored.point_count == db.point_count
        for metric in db.metrics():
            q = Query(metric, 0, 2**41)
            a = db.run(q).single()
            b = restored.run(q).single()
            assert np.array_equal(a.timestamps, b.timestamps)
            assert np.allclose(a.values, b.values)


class TestDownsampleProperties:
    @given(points, st.sampled_from([60, 300, 3600]))
    @settings(max_examples=100, deadline=None)
    def test_bucket_timestamps_aligned(self, pts, width):
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        out = apply_downsample(store.scan(), Downsample(width, "avg"))
        assert all(int(t) % width == 0 for t in out.timestamps)

    @given(points, st.sampled_from([60, 300]))
    @settings(max_examples=100, deadline=None)
    def test_avg_bucket_within_min_max(self, pts, width):
        assume(pts)
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        sl = store.scan()
        out = apply_downsample(sl, Downsample(width, "avg"))
        lo, hi = sl.values.min(), sl.values.max()
        assert ((out.values >= lo - 1e-9) & (out.values <= hi + 1e-9)).all()

    @given(points, st.sampled_from([60, 300]))
    @settings(max_examples=100, deadline=None)
    def test_count_conserved(self, pts, width):
        """Sum of bucket counts equals the number of deduped points."""
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        sl = store.scan()
        out = apply_downsample(sl, Downsample(width, "count"))
        assert out.values.sum() == len(sl)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10**6), values), min_size=2, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fill_previous_never_creates_new_values(self, pts):
        # Bounded span: gap filling materializes the whole bucket range.
        store = SeriesStore()
        for t, v in pts:
            store.append(t, v)
        out = apply_downsample(
            store.scan(), Downsample(300, "last", FillPolicy.PREVIOUS)
        )
        finite = out.values[np.isfinite(out.values)]
        allowed = set(store.scan().values.tolist())
        assert all(v in allowed for v in finite.tolist())


shard_counts = st.sampled_from([1, 2, 4, 7])
tagged_rows = st.lists(
    st.tuples(metric_names, timestamps, values, tag_values),
    min_size=0,
    max_size=60,
)


class TestShardedProperties:
    @given(metric_names, tag_values, st.integers(min_value=1, max_value=16))
    @settings(max_examples=200, deadline=None)
    def test_routing_is_stable_and_in_range(self, metric, node, n):
        """Same key → same shard, always a valid index, and rebuilding
        the key from scratch routes identically (no id()/hash-seed leak)."""
        key = SeriesKey.make(metric, {"node": node})
        again = SeriesKey.make(metric, {"node": node})
        assert shard_for_key(key, n) == shard_for_key(again, n)
        assert 0 <= shard_for_key(key, n) < n

    @given(tagged_rows, shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_sharded_matches_single_store(self, rows, n):
        single, sharded = TSDB(), ShardedTSDB(n)
        for metric, ts, value, node in rows:
            single.put(metric, ts, value, {"node": node})
            sharded.put(metric, ts, value, {"node": node})
        assert dumps(sharded) == dumps(single)
        for metric in single.metrics():
            a = single.run(Query(metric, 0, 2**41, group_by=["node"]))
            b = sharded.run(Query(metric, 0, 2**41, group_by=["node"]))
            assert a.scanned_points == b.scanned_points
            for ra, rb in zip(a, b):
                assert np.array_equal(ra.timestamps, rb.timestamps)
                assert np.array_equal(ra.values, rb.values, equal_nan=True)

    @given(tagged_rows, shard_counts)
    @settings(max_examples=40, deadline=None)
    def test_merged_query_output_is_globally_sorted(self, rows, n):
        """The fan-out/merge never emits an unsorted or duplicated
        timestamp, whatever the shard layout."""
        sharded = ShardedTSDB(n)
        for metric, ts, value, node in rows:
            sharded.put(metric, ts, value, {"node": node})
        for metric in sharded.metrics():
            res = sharded.run(Query(metric, 0, 2**41, aggregator="sum"))
            for series in res:
                assert np.all(np.diff(series.timestamps) > 0)

    @given(tagged_rows, shard_counts)
    @settings(max_examples=25, deadline=None)
    def test_snapshot_restore_round_trips_per_shard(self, rows, n):
        sharded = ShardedTSDB(n)
        for metric, ts, value, node in rows:
            sharded.put(metric, ts, value, {"node": node})
        restored = load(io.StringIO(dumps(sharded)), into=ShardedTSDB(n))
        assert dumps(restored) == dumps(sharded)
        # Same bytes shard by shard, not just in aggregate: routing is a
        # pure function of the key, so each shard restores its own data.
        for orig, back in zip(sharded.shards, restored.shards):
            assert dumps(back) == dumps(orig)


class TestQueryProperties:
    @given(
        st.lists(st.tuples(timestamps, values, tag_values), min_size=1, max_size=80)
    )
    @settings(max_examples=50, deadline=None)
    def test_group_by_partitions_scanned_points(self, rows):
        db = TSDB()
        for ts, value, node in rows:
            db.put("m", ts, value, {"node": node})
        grouped = db.run(Query("m", 0, 2**41, group_by=["node"]))
        merged = db.run(Query("m", 0, 2**41))
        assert grouped.scanned_points == merged.scanned_points
        # Each group's series count adds up to the total distinct series.
        assert sum(len(s.source_series) for s in grouped) == db.series_count

    @given(st.lists(st.tuples(timestamps, values), min_size=2, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_rate_of_cumsum_is_nonnegative(self, pts):
        """A monotone counter has a non-negative rate everywhere."""
        db = TSDB()
        ts_sorted = sorted({t for t, _ in pts})
        assume(len(ts_sorted) >= 2)
        running = 0.0
        for i, t in enumerate(ts_sorted):
            running += abs(pts[i % len(pts)][1])
            db.put("counter", t, running)
        res = db.run(Query("counter", 0, 2**41, rate=True)).single()
        assert (res.values >= 0.0).all()
