"""ADR loop: the network tunes device data rates from link quality."""

import pytest

from repro.core import CttEcosystem, EcosystemConfig, trondheim_deployment, vejle_deployment
from repro.lorawan import airtime_s
from repro.simclock import HOUR


class TestAdrLoop:
    def test_close_nodes_step_down_to_fast_sf(self):
        """Vejle nodes sit a few hundred metres from the gateway: after a
        window of strong uplinks, ADR drops them from SF9 to SF7."""
        eco = CttEcosystem(
            [vejle_deployment()],
            config=EcosystemConfig(seed=3, shadowing_sigma_db=2.0),
        )
        eco.start()
        city = eco.city("vejle")
        assert all(n.device.sf == 9 for n in city.nodes.values())
        eco.run(3 * HOUR)  # > ADR_WINDOW uplinks per node
        changed = city.apply_adr()
        assert changed  # at least one device retuned
        for node_id, (old, new) in changed.items():
            assert new < old  # strong links go faster, never slower here
        assert all(n.device.sf <= 9 for n in city.nodes.values())

    def test_adr_shortens_airtime(self):
        eco = CttEcosystem(
            [vejle_deployment()],
            config=EcosystemConfig(seed=3, shadowing_sigma_db=2.0),
        )
        eco.start()
        city = eco.city("vejle")
        before = airtime_s(31, city.nodes["ctt-vj-01"].device.sf)
        eco.run(3 * HOUR)
        city.apply_adr()
        after = airtime_s(31, city.nodes["ctt-vj-01"].device.sf)
        assert after < before  # the whole point of ADR

    def test_adr_noop_without_enough_history(self):
        eco = CttEcosystem([vejle_deployment()], config=EcosystemConfig(seed=3))
        eco.start()
        eco.run(20 * 60)  # only ~4 uplinks: below the ADR window
        assert eco.city("vejle").apply_adr() == {}

    def test_network_keeps_working_after_adr(self):
        eco = CttEcosystem(
            [vejle_deployment()],
            config=EcosystemConfig(seed=3, shadowing_sigma_db=2.0),
        )
        eco.start()
        city = eco.city("vejle")
        eco.run(3 * HOUR)
        processed_before = city.dataport.stats.uplinks_processed
        city.apply_adr()
        eco.run(2 * HOUR)
        assert city.dataport.stats.uplinks_processed > processed_before
        assert city.delivery_stats()["end_to_end_rate"] > 0.85
