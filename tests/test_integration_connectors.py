"""Tests for the Table 1 external-source connectors."""

import datetime as dt

import numpy as np
import pytest

from repro.geo import BoundingBox, GeoPoint, TRONDHEIM, VEJLE
from repro.integration import (
    Catalog,
    CountingCampaign,
    HereTrafficConnector,
    Municipality,
    MunicipalCountsConnector,
    NationalStatsConnector,
    NiluStation,
    Observation,
    Oco2Connector,
    REPEAT_CYCLE_S,
    SourceType,
    TABLE1,
    intensity_to_jam_factor,
    render_table1,
    validate_batch,
)
from repro.sensors import RoadSegment, UrbanEnvironment
from repro.simclock import DAY, HOUR, from_datetime


@pytest.fixture
def env():
    return UrbanEnvironment("trondheim", TRONDHEIM, seed=7)


def ts(month=6, day=14, hour=0):
    return from_datetime(dt.datetime(2017, month, day, hour))


class TestObservationSchema:
    def test_uncertainty_validation(self):
        with pytest.raises(ValueError):
            Observation(
                "s", SourceType.TRAFFIC_FLOW, "q", 0, 1.0, "u", uncertainty=-1.0
            )

    def test_validate_batch_ordering(self):
        a = Observation("s", SourceType.TRAFFIC_FLOW, "q", 10, 1.0, "u")
        b = Observation("s", SourceType.TRAFFIC_FLOW, "q", 5, 1.0, "u")
        with pytest.raises(ValueError):
            validate_batch([a, b])
        assert validate_batch([b, a]) == [b, a]


class TestNilu(object):
    def test_hourly_cadence(self, env):
        station = NiluStation("NO0001", TRONDHEIM, env)
        obs = station.fetch(ts(6, 14, 0), ts(6, 14, 6))
        hours = sorted({o.timestamp for o in obs})
        assert len(hours) == 7
        assert all((h % HOUR) == 0 for h in hours)
        assert station.cadence_s() == HOUR

    def test_publishes_no2_pm_not_co2(self, env):
        station = NiluStation("NO0001", TRONDHEIM, env)
        quantities = {o.quantity for o in station.fetch(ts(), ts(6, 14, 2))}
        assert "no2_ugm3" in quantities
        assert "pm10_ugm3" in quantities
        assert "co2_ppm" not in quantities

    def test_reference_accuracy(self, env):
        """Station readings track the hourly truth far better than a
        low-cost node would (the grounding premise)."""
        station = NiluStation("NO0001", TRONDHEIM, env, seed=3)
        errors = []
        for o in station.fetch(ts(6, 14, 0), ts(6, 15, 0)):
            if o.quantity != "no2_ugm3":
                continue
            truth = np.mean(
                [
                    env.no2_ugm3(o.timestamp + k * 300, TRONDHEIM)
                    for k in range(12)
                ]
            )
            errors.append(abs(o.value - truth))
        assert np.mean(errors) < 2.0

    def test_deterministic(self, env):
        s1 = NiluStation("NO0001", TRONDHEIM, env, seed=3)
        s2 = NiluStation("NO0001", TRONDHEIM, env, seed=3)
        o1 = s1.fetch(ts(), ts(6, 14, 3))
        o2 = s2.fetch(ts(), ts(6, 14, 3))
        assert [o.value for o in o1] == [o.value for o in o2]


class TestOco2:
    def region(self):
        return BoundingBox.around(TRONDHEIM, 8000.0)

    def test_overpass_schedule(self, env):
        sat = Oco2Connector(self.region(), env, seed=1)
        passes = sat.overpass_times(0, 120 * DAY)
        assert len(passes) >= 6
        diffs = np.diff(passes)
        assert all(d == REPEAT_CYCLE_S for d in diffs)

    def test_sparse_and_column_diluted(self, env):
        sat = Oco2Connector(self.region(), env, seed=1, cloud_failure_limit=1.1)
        obs = sat.fetch(0, 64 * DAY)
        assert obs  # some passes retrieved
        xco2 = np.array([o.value for o in obs])
        # Column values sit near the background with small enhancements.
        assert abs(xco2.mean() - 408.0) < 4.0
        assert xco2.std() < 4.0

    def test_cloud_screening_loses_passes(self, env):
        always = Oco2Connector(self.region(), env, seed=1, cloud_failure_limit=1.1)
        screened = Oco2Connector(self.region(), env, seed=1, cloud_failure_limit=0.3)
        n_all = len({o.timestamp for o in always.fetch(0, 200 * DAY)})
        n_scr = len({o.timestamp for o in screened.fetch(0, 200 * DAY)})
        assert n_scr < n_all

    def test_footprints_inside_region(self, env):
        sat = Oco2Connector(self.region(), env, seed=1, cloud_failure_limit=1.1)
        for o in sat.fetch(0, 32 * DAY):
            assert self.region().contains(o.location)

    def test_grid_overpass(self, env):
        sat = Oco2Connector(self.region(), env, seed=1, cloud_failure_limit=1.1)
        overpass = sat.overpass_times(0, 32 * DAY)[0]
        grid = sat.grid_overpass(overpass)
        # A single swath covers a narrow band, not the whole region.
        assert 0.0 < grid.coverage() < 0.5


class TestHereTraffic:
    def segments(self):
        return [
            RoadSegment("E6", TRONDHEIM, TRONDHEIM.destination(90.0, 2000.0), 1.0),
            RoadSegment("ring", TRONDHEIM, TRONDHEIM.destination(0.0, 1500.0), 0.6),
        ]

    def test_jam_mapping_monotone(self):
        xs = np.linspace(0.0, 1.0, 20)
        ys = [intensity_to_jam_factor(x) for x in xs]
        assert ys == sorted(ys)
        assert ys[0] == 0.0
        assert ys[-1] == 10.0

    def test_five_minute_updates(self, env):
        feed = HereTrafficConnector(env, self.segments(), seed=1)
        obs = feed.fetch(ts(6, 14, 8), ts(6, 14, 9))
        ticks = sorted({o.timestamp for o in obs})
        assert all(t % 300 == 0 for t in ticks)
        assert len(ticks) == 13

    def test_rush_hour_higher_than_night(self, env):
        feed = HereTrafficConnector(env, self.segments(), seed=1)
        rush = [o.value for o in feed.fetch(ts(6, 14, 8), ts(6, 14, 9))]
        night = [o.value for o in feed.fetch(ts(6, 14, 2), ts(6, 14, 3))]
        assert np.mean(rush) > np.mean(night) + 0.5

    def test_missing_updates_happen(self, env):
        feed = HereTrafficConnector(
            env, self.segments(), seed=1, missing_probability=0.3
        )
        obs = feed.fetch(ts(6, 14, 0), ts(6, 15, 0))
        expected = (24 * 12 + 1) * 2
        assert len(obs) < expected

    def test_requires_segments(self, env):
        with pytest.raises(ValueError):
            HereTrafficConnector(env, [], seed=1)

    def test_bounds(self, env):
        feed = HereTrafficConnector(env, self.segments(), seed=1)
        for o in feed.fetch(ts(6, 14, 0), ts(6, 15, 0)):
            assert 0.0 <= o.value <= 10.0


class TestMunicipalCounts:
    def campaign(self, start, days=14):
        seg = RoadSegment("E6", TRONDHEIM, TRONDHEIM.destination(90.0, 2000.0))
        return CountingCampaign(seg, start, start + days * DAY)

    def test_only_during_campaign(self, env):
        start = ts(6, 1)
        counts = MunicipalCountsConnector(env, [self.campaign(start)], seed=1)
        inside = counts.fetch(start, start + DAY)
        outside = counts.fetch(start + 60 * DAY, start + 61 * DAY)
        assert inside
        assert outside == []

    def test_campaign_validation(self):
        seg = RoadSegment("x", TRONDHEIM, VEJLE)
        with pytest.raises(ValueError):
            CountingCampaign(seg, 100, 100)

    def test_counts_track_rush_hour(self, env):
        start = ts(6, 12)  # Monday
        counts = MunicipalCountsConnector(env, [self.campaign(start)], seed=1)
        obs = counts.fetch(ts(6, 14, 0), ts(6, 14, 23))
        by_hour = {o.timestamp: o.value for o in obs}
        rush = by_hour[ts(6, 14, 8)]
        night = by_hour[ts(6, 14, 2)]
        assert rush > night * 2

    def test_coverage_fraction(self, env):
        start = ts(6, 1)
        counts = MunicipalCountsConnector(env, [self.campaign(start, days=7)], seed=1)
        frac = counts.coverage_fraction(start, start + 14 * DAY)
        assert frac == pytest.approx(0.5, abs=0.01)


class TestNationalStats:
    def muni(self):
        return Municipality(
            "trondheim", population=190_000, national_population=5_250_000
        )

    def test_annual_observations(self):
        conn = NationalStatsConnector(self.muni(), seed=1)
        obs = conn.fetch(ts(1, 1) - DAY, ts(1, 1) + 400 * DAY)
        years = {o.metadata["year"] for o in obs}
        assert 2017 in years
        assert all(o.quantity.startswith("ghg_") for o in obs)

    def test_downscale_magnitude(self):
        conn = NationalStatsConnector(self.muni(), seed=1)
        total, sigma = conn.total_with_uncertainty(2017)
        # ~3.6 % of a 52,000 kt inventory is ~1900 kt.
        assert 1000.0 < total < 3000.0
        assert sigma > 0.15 * total  # "high uncertainties"

    def test_sector_shares_validated(self):
        with pytest.raises(ValueError):
            NationalStatsConnector(
                self.muni(), sectors={"road_transport": 0.5}, seed=1
            )

    def test_proxy_override(self):
        base = NationalStatsConnector(self.muni(), seed=1)
        heavy_traffic = NationalStatsConnector(
            Municipality(
                "trondheim", 190_000, 5_250_000, vehicle_km_share=0.10
            ),
            seed=1,
        )
        b = base.downscale_year(2017)["road_transport"][0]
        h = heavy_traffic.downscale_year(2017)["road_transport"][0]
        assert h > b * 2


class TestCatalog:
    def test_table1_has_six_rows(self):
        assert len(TABLE1) == 6
        types = {d.source_type for d in TABLE1}
        assert SourceType.CITY_MODEL_3D in types

    def test_coverage_tracking(self, env):
        catalog = Catalog()
        assert not catalog.is_complete()
        seg = [RoadSegment("E6", TRONDHEIM, TRONDHEIM.destination(90.0, 500.0))]
        catalog.register(NiluStation("NO1", TRONDHEIM, env))
        catalog.register(Oco2Connector(BoundingBox.around(TRONDHEIM, 5000.0), env))
        catalog.register(HereTrafficConnector(env, seg))
        catalog.register(MunicipalCountsConnector(env, []))
        catalog.register(NationalStatsConnector(
            Municipality("t", 190_000, 5_250_000)
        ))
        missing = catalog.missing_types()
        assert missing == {SourceType.CITY_MODEL_3D}

    def test_render_table1(self):
        text = render_table1()
        assert "NILU" in text
        assert "OCO-2" in text
        assert "here.com" in text
        assert len(text.splitlines()) == 8  # header + rule + 6 rows
