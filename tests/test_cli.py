"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.city == "trondheim"
        assert args.hours == 6
        assert args.seed == 0

    def test_city_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--city", "oslo"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--city", "vejle", "--hours", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "vejle: 1 simulated hour(s)" in out
        assert "transmissions" in out

    def test_dashboard(self, capsys):
        assert main(["dashboard", "--city", "vejle", "--hours", "1"]) == 0
        out = capsys.readouterr().out
        assert "CAQI per node" in out

    def test_wall(self, capsys):
        assert main(["wall", "--city", "vejle", "--hours", "1"]) == 0
        out = capsys.readouterr().out
        assert "CTT wall" in out
        assert "Active alarms" in out

    def test_table1(self, capsys):
        assert main(["table1", "--city", "vejle"]) == 0
        out = capsys.readouterr().out
        assert "NILU" in out
        assert "connector" in out

    def test_run_deterministic(self, capsys):
        main(["run", "--city", "vejle", "--hours", "1", "--seed", "3"])
        first = capsys.readouterr().out
        main(["run", "--city", "vejle", "--hours", "1", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestCatalogCommand:
    def test_metrics_listing(self, capsys):
        assert main(["catalog", "--city", "vejle", "--hours", "1"]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["catalog"]["op"] == "metrics"
        assert "air.co2.ppm" in reply["catalog"]["values"]

    def test_tag_values_and_cardinality(self, capsys):
        assert main(["catalog", "--city", "vejle", "--hours", "1",
                     "--metric", "air.co2.ppm", "--key", "city"]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["catalog"]["values"] == ["vejle"]
        assert main(["catalog", "--city", "vejle", "--hours", "1",
                     "--metric", "air.co2.ppm", "--cardinality",
                     "--tags", "node=*"]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["catalog"]["count"] > 0

    def test_flag_validation(self):
        with pytest.raises(SystemExit):
            main(["catalog", "--key", "node"])  # --key needs --metric
        with pytest.raises(SystemExit):
            main(["catalog", "--metric", "m", "--key", "k",
                  "--cardinality"])  # exclusive
        with pytest.raises(SystemExit):
            main(["catalog", "--metric", "m", "--tags", "a=b"])  # no op

    def test_in_band_error_exits_nonzero(self, capsys):
        assert main(["catalog", "--city", "vejle", "--hours", "1",
                     "--metric", "air.co2.ppm", "--key", "bad|key"]) == 1
        reply = json.loads(capsys.readouterr().out)
        assert reply["error"]["type"] == "InvalidName"
