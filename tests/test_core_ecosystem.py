"""Tests for deployments, the full ecosystem, and demo scenarios."""

import numpy as np
import pytest

from repro.core import (
    CttEcosystem,
    EcosystemConfig,
    backfill_history,
    build_air_quality_dashboard,
    build_traffic_dashboard,
    build_wall_display,
    citizens_scenario,
    developer_scenario,
    officials_scenario,
    trondheim_deployment,
    vejle_deployment,
)
from repro.sensors import PollutionInjection
from repro.simclock import CTT_EPOCH, DAY, HOUR
from repro.tsdb import METRIC_CO2, METRIC_JAM_FACTOR, Query


class TestDeployments:
    def test_trondheim_has_twelve_nodes(self):
        d = trondheim_deployment()
        assert len(d.nodes) == 12
        assert len(d.gateways) == 3
        assert d.city == "trondheim"

    def test_vejle_has_two_nodes(self):
        d = vejle_deployment()
        assert len(d.nodes) == 2
        assert len(d.gateways) == 1

    def test_each_city_has_reference_anchor(self):
        for d in (trondheim_deployment(), vejle_deployment()):
            assert d.reference_node is not None
            assert d.reference_location is not None

    def test_node_ids_unique(self):
        d = trondheim_deployment()
        ids = [n.node_id for n in d.nodes]
        assert len(set(ids)) == len(ids)

    def test_nodes_within_city_scale(self):
        d = trondheim_deployment()
        for n in d.nodes:
            assert d.center.distance_to(n.location) < 5000.0


@pytest.fixture(scope="module")
def eco():
    """Both cities, 6 simulated hours, shared for read-only tests."""
    ecosystem = CttEcosystem(
        [trondheim_deployment(), vejle_deployment()],
        config=EcosystemConfig(seed=1, shadowing_sigma_db=4.0),
    )
    ecosystem.start()
    ecosystem.run(6 * HOUR)
    return ecosystem


class TestEcosystem:
    def test_both_cities_deliver_data(self, eco):
        for name in ("trondheim", "vejle"):
            stats = eco.city(name).delivery_stats()
            assert stats["transmissions"] > 0
            assert stats["end_to_end_rate"] > 0.8

    def test_database_is_shared(self, eco):
        cities = eco.db.suggest_tag_values(METRIC_CO2, "city")
        assert cities == ["trondheim", "vejle"]

    def test_twelve_and_two_nodes_report(self, eco):
        trd = eco.db.suggest_tag_values(METRIC_CO2, "node")
        assert len([n for n in trd if n.startswith("ctt-tr")]) == 12
        assert len([n for n in trd if n.startswith("ctt-vj")]) == 2

    def test_network_snapshot_complete(self, eco):
        snap = eco.city("trondheim").network_snapshot()
        assert len(snap["sensors"]) == 12
        assert len(snap["gateways"]) == 3
        assert snap["overdue_sensors"] == []

    def test_external_sync(self, eco):
        report = eco.city("trondheim").sync_external(
            CTT_EPOCH, CTT_EPOCH + 6 * HOUR
        )
        assert report.per_source["nilu:trondheim-ref"] > 0
        assert report.per_source["here:traffic"] > 0
        assert "ext.no2_ugm3" in eco.db.metrics()

    def test_catalog_covers_table1(self, eco):
        from repro.integration import SourceType

        catalog = eco.city("trondheim").catalog
        assert catalog.missing_types() == {SourceType.CITY_MODEL_3D}
        assert eco.city("trondheim").city_model is not None  # row 5 is static

    def test_latest_sensor_values_for_overlay(self, eco):
        values = eco.city("trondheim").sensor_values_latest(METRIC_CO2)
        assert len(values) == 12
        for node, (loc, value) in values.items():
            assert 380.0 < value < 600.0

    def test_deterministic_given_seed(self):
        def build():
            e = CttEcosystem(
                [vejle_deployment()], config=EcosystemConfig(seed=5)
            )
            e.start()
            e.run(2 * HOUR)
            return e.city("vejle").delivery_stats()

        assert build() == build()


class TestBackfillAndScenarios:
    @pytest.fixture(scope="class")
    def city_with_history(self):
        eco = CttEcosystem(
            [vejle_deployment()], config=EcosystemConfig(seed=2)
        )
        city = eco.city("vejle")
        start = CTT_EPOCH
        end = start + 7 * DAY
        written = backfill_history(city, start, end, cadence_s=HOUR)
        assert written > 0
        eco.start()
        eco.scheduler.clock  # noqa: B018 - documented access
        return eco, city, start, end

    def test_backfill_volume(self, city_with_history):
        eco, city, start, end = city_with_history
        hours = (end - start) // HOUR
        res = eco.db.run(
            Query(METRIC_CO2, start, end - 1, tags={"city": "vejle", "node": "*"})
        )
        assert res.scanned_points == hours * 2  # 2 nodes

    def test_backfill_includes_traffic(self, city_with_history):
        eco, city, start, end = city_with_history
        res = eco.db.run(Query(METRIC_JAM_FACTOR, start, end - 1))
        assert not res.is_empty()

    def test_backfill_validation(self, city_with_history):
        eco, city, start, end = city_with_history
        with pytest.raises(ValueError):
            backfill_history(city, end, start)

    def test_developer_scenario(self, city_with_history):
        eco, city, *_ = city_with_history
        view = developer_scenario(city)
        assert "LoRaWAN -> network server -> MQTT" in view.architecture
        assert "ctt-vj-01" in view.architecture
        assert "uplink flow" in view.flow_description

    def test_officials_scenario_fig5_verdict(self, city_with_history):
        eco, city, start, end = city_with_history
        view = officials_scenario(city, start, end - 1)
        assert view.co2_traffic_verdict == "no apparent correlation"
        assert abs(view.co2_traffic_correlation) < 0.5
        assert view.factor_r2_full > view.factor_r2_traffic
        assert "<svg" in view.city_svg

    def test_officials_scenario_injection(self, city_with_history):
        eco, city, start, end = city_with_history
        injection = PollutionInjection(
            center=city.deployment.center,
            start=start + 3 * DAY,
            end=start + 3 * DAY + 6 * HOUR,
            no2_ugm3=120.0,
        )
        view = officials_scenario(city, start, end - 1, injection=injection)
        effect = view.suggested_injection_effect
        assert effect["no2_after"] > effect["no2_before"] + 100.0
        assert effect["caqi_after"] != effect["caqi_before"]
        city.environment.clear_injections()

    def test_citizens_scenario(self, city_with_history):
        eco, city, start, end = city_with_history
        view = citizens_scenario(city, start, end - 1)
        assert "Air quality" in view.dashboard_text
        assert view.anomalous_day_count >= 0

    def test_dashboards_render(self, city_with_history):
        eco, city, start, end = city_with_history
        air = build_air_quality_dashboard(city, start, end - 1)
        traffic = build_traffic_dashboard(city, start, end - 1)
        assert "CAQI per node" in air.render_text()
        assert "Jam factor" in traffic.render_text()
        assert "<svg" in air.render_html()

    def test_wall_display(self, city_with_history):
        eco, city, start, end = city_with_history
        wall = build_wall_display(city, start, end - 1)
        text = wall.render_text()
        assert "CTT wall" in text
        assert "Active alarms" in text
        assert "fleet:" in text
