"""Live stream analysis over the running ecosystem (Fig. 1's "stream
processing on measurement data").

A FlowGraph binds to the ecosystem's MQTT uplink topic (automation),
decodes payloads on the fly, and computes windowed aggregates while the
simulation runs — the Zeppelin streaming path of the demo.
"""

import json

import numpy as np
import pytest

from repro.core import CttEcosystem, EcosystemConfig, vejle_deployment
from repro.lorawan import decode_measurements
from repro.simclock import HOUR
from repro.streams import Event, Filter, FlowGraph, Map, Sink, Source, TumblingWindow


@pytest.fixture
def eco():
    return CttEcosystem([vejle_deployment()], config=EcosystemConfig(seed=41))


def co2_extractor(message):
    """MQTT uplink JSON -> CO2 event."""
    try:
        doc = json.loads(message.text())
        m = decode_measurements(bytes.fromhex(doc["payload_hex"]))
    except Exception:
        return None
    return Event(doc["received_at"], m.co2_ppm, {"node": doc["dev_eui"]})


class TestLiveStreamAnalysis:
    def test_windowed_average_over_live_uplinks(self, eco):
        city = eco.city("vejle")
        graph = FlowGraph("live-co2")
        graph.add("src", Source())
        graph.add("hourly", TumblingWindow(3600, np.mean))
        graph.add("out", Sink())
        graph.connect("src", "hourly")
        graph.connect("hourly", "out")
        graph.bind_mqtt(city.broker, "ctt/+/devices/+/up", "src", co2_extractor)

        eco.start()
        eco.run(4 * HOUR)
        graph.flush()

        sink = graph.stage("out")
        assert 3 <= len(sink.events) <= 5  # ~4 hourly windows
        assert all(380.0 < e.value < 600.0 for e in sink.events)

    def test_alarm_style_threshold_filter(self, eco):
        """A live rule: flag any single reading above a threshold."""
        city = eco.city("vejle")
        flagged = []
        graph = FlowGraph("threshold")
        graph.add("src", Source())
        graph.add("high", Filter(lambda e: e.value > 470.0))
        graph.add("out", Sink(callback=flagged.append))
        graph.connect("src", "high")
        graph.connect("high", "out")
        graph.bind_mqtt(city.broker, "ctt/+/devices/+/up", "src", co2_extractor)

        eco.start()
        eco.run(2 * HOUR)
        # Inject a pollution spike and keep running: the rule fires.
        from repro.sensors import PollutionInjection

        city.inject_pollution(
            PollutionInjection(
                center=city.deployment.center,
                start=eco.now,
                end=eco.now + HOUR,
                co2_ppm=200.0,
                radius_m=2000.0,
            )
        )
        eco.run(HOUR)
        assert flagged
        assert all(e.value > 470.0 for e in flagged)

    def test_per_node_fanout(self, eco):
        """Rewirable per-node chains: one source fans out to per-node
        filters (the demo's 'change the dependency' flexibility)."""
        city = eco.city("vejle")
        graph = FlowGraph("per-node")
        graph.add("src", Source())
        for node_id in city.nodes:
            graph.add(
                f"only-{node_id}",
                Filter(lambda e, n=node_id: e.tags.get("node") == n),
            )
            graph.add(f"sink-{node_id}", Sink())
            graph.connect("src", f"only-{node_id}")
            graph.connect(f"only-{node_id}", f"sink-{node_id}")
        graph.bind_mqtt(city.broker, "ctt/+/devices/+/up", "src", co2_extractor)

        eco.start()
        eco.run(2 * HOUR)
        counts = {
            node_id: len(graph.stage(f"sink-{node_id}").events)
            for node_id in city.nodes
        }
        assert all(c > 0 for c in counts.values())
        total = len(graph.stage("src")._downstream)  # two filter branches
        assert total == 2
