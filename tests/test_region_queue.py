"""AsyncBatchQueue invariants: bounded depth, backpressure accounting.

The queue is the load-bearing piece of the regional fan-in layer, so its
invariants are pinned both by direct scenarios and by hypothesis-driven
operation sequences:

- in-memory depth never exceeds capacity, for every policy;
- ``block`` refuses but never loses (conservation holds exactly);
- ``drop-oldest`` evictions are deterministic and exactly accounted;
- ``spill`` preserves global FIFO order across the disk boundary.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.region import AsyncBatchQueue, Backpressure
from repro.tsdb import PointBatch


def make_batch(start_ts: int, n: int, metric: str = "air.co2.ppm") -> PointBatch:
    """A batch of ``n`` consecutive-timestamp points for one series."""
    ts = np.arange(start_ts, start_ts + n, dtype=np.int64)
    return PointBatch.for_series(metric, ts, np.full(n, 1.0), {"node": "n1"})


def drained_timestamps(batch: PointBatch) -> list[int]:
    return batch.timestamps.tolist()


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AsyncBatchQueue(0)

    def test_spill_requires_dir(self):
        with pytest.raises(ValueError, match="spill_dir"):
            AsyncBatchQueue(10, Backpressure.SPILL)

    def test_policy_coercion_from_string(self):
        q = AsyncBatchQueue(10, "drop-oldest")
        assert q.policy is Backpressure.DROP_OLDEST
        with pytest.raises(ValueError, match="unknown backpressure"):
            AsyncBatchQueue(10, "drop-newest")


class TestFifo:
    def test_offer_then_drain_preserves_order(self):
        q = AsyncBatchQueue(100)
        q.offer(make_batch(0, 10))
        q.offer(make_batch(10, 10))
        q.offer(make_batch(20, 10))
        out = q.drain()
        assert drained_timestamps(out) == list(range(30))
        assert q.is_empty()

    def test_drain_limit_is_batch_granular_but_progresses(self):
        q = AsyncBatchQueue(100)
        q.offer(make_batch(0, 40))
        q.offer(make_batch(40, 40))
        first = q.drain(max_points=10)  # takes the whole first batch
        assert len(first) == 40
        assert q.depth_points == 40
        assert len(q.drain(max_points=10)) == 40
        assert q.drain().is_empty()

    def test_empty_offer_and_empty_drain(self):
        q = AsyncBatchQueue(10)
        assert q.offer(PointBatch.empty())
        assert q.drain().is_empty()
        assert q.stats.flushes == 0


class TestBlock:
    def test_refuses_when_full_and_loses_nothing(self):
        q = AsyncBatchQueue(25, Backpressure.BLOCK)
        assert q.offer(make_batch(0, 20))
        assert not q.offer(make_batch(20, 10))  # would exceed 25
        assert q.stats.refused_offers == 1
        assert q.stats.refused_points == 10
        assert q.depth_points == 20  # unchanged
        # After draining, the refused batch fits.
        q.drain()
        assert q.offer(make_batch(20, 10))
        assert drained_timestamps(q.drain()) == list(range(20, 30))
        assert q.stats.dropped_points == 0

    def test_depth_never_exceeds_capacity(self):
        q = AsyncBatchQueue(50, Backpressure.BLOCK)
        ts = 0
        for n in (30, 30, 20, 50, 1):
            q.offer(make_batch(ts, n))
            ts += n
            assert q.depth_points <= 50


class TestDropOldest:
    def test_evicts_oldest_rows_with_exact_accounting(self):
        q = AsyncBatchQueue(25, Backpressure.DROP_OLDEST)
        q.offer(make_batch(0, 10))
        q.offer(make_batch(10, 10))
        q.offer(make_batch(20, 10))  # evicts exactly 5 rows, not a batch
        assert q.depth_points == 25  # row-granular: filled to the brim
        assert q.stats.dropped_points == 5
        assert q.stats.dropped_batches == 0  # boundary batch was trimmed
        assert drained_timestamps(q.drain()) == list(range(5, 30))

    def test_evicts_whole_batches_when_needed(self):
        q = AsyncBatchQueue(25, Backpressure.DROP_OLDEST)
        q.offer(make_batch(0, 10))
        q.offer(make_batch(10, 10))
        q.offer(make_batch(20, 22))  # needs 17 rows: one batch + 7 rows
        assert q.depth_points == 25
        assert q.stats.dropped_points == 17
        assert q.stats.dropped_batches == 1
        assert drained_timestamps(q.drain()) == list(range(17, 42))

    def test_oversized_batch_keeps_newest_rows(self):
        q = AsyncBatchQueue(10, Backpressure.DROP_OLDEST)
        q.offer(make_batch(0, 5))
        q.offer(make_batch(100, 25))  # alone exceeds capacity
        assert q.depth_points == 10
        # Queued rows are exactly the newest 10 of the oversized batch.
        assert drained_timestamps(q.drain()) == list(range(115, 125))
        assert q.stats.dropped_points == 5 + 15

    def test_newest_data_always_survives(self):
        q = AsyncBatchQueue(30, Backpressure.DROP_OLDEST)
        ts = 0
        for _ in range(20):
            q.offer(make_batch(ts, 10))
            ts += 10
        survivors = drained_timestamps(q.drain())
        assert survivors == list(range(170, 200))  # the newest 30


class TestSpill:
    def test_overflow_spills_and_recovers_in_order(self, tmp_path):
        q = AsyncBatchQueue(25, Backpressure.SPILL, spill_dir=tmp_path / "sp")
        q.offer(make_batch(0, 10))
        q.offer(make_batch(10, 10))
        q.offer(make_batch(20, 10))  # spills the first batch to disk
        assert q.depth_points == 20
        assert q.spill_pending_points == 10
        assert q.stats.spilled_points == 10
        out = q.drain()
        assert drained_timestamps(out) == list(range(30))  # global FIFO kept
        assert q.stats.recovered_points == 10
        assert q.is_empty()
        assert list((tmp_path / "sp").iterdir()) == []  # segments consumed

    def test_spill_preserves_values_and_tags_exactly(self, tmp_path):
        q = AsyncBatchQueue(3, Backpressure.SPILL, spill_dir=tmp_path)
        ts = np.array([5, 6, 7], dtype=np.int64)
        vals = np.array([1.25, -3.5e-7, 4e12])
        q.offer(PointBatch.for_series("air.no2.ugm3", ts, vals, {"city": "vejle"}))
        q.offer(make_batch(100, 3))  # pushes the first batch to disk
        out = q.drain()
        assert out.timestamps.tolist() == [5, 6, 7, 100, 101, 102]
        np.testing.assert_array_equal(out.values[:3], vals)
        assert out.keys[0].tag("city") == "vejle"

    def test_leftover_segments_adopted_on_restart(self, tmp_path):
        """Crash recovery: a new queue over a reused spill_dir drains the
        previous process's segments first, never appending to them."""
        q1 = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        q1.offer(make_batch(0, 10))
        q1.offer(make_batch(10, 10))  # first batch spills to disk
        assert q1.spill_pending_points == 10
        del q1  # "crash": segment file stays behind, queue never drained

        q2 = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        assert q2.spill_pending_points == 10  # adopted, not clobbered
        q2.offer(make_batch(100, 10))  # reuses the dir without collision
        q2.offer(make_batch(110, 10))
        out = []
        while not q2.is_empty():
            out.extend(drained_timestamps(q2.drain()))
        assert out[:10] == list(range(10))  # oldest (adopted) rows first
        assert out[10:] == list(range(100, 120))
        # Conservation still holds with the adopted rows counted in.
        assert q2.stats.accepted_points == q2.stats.drained_points == 30
        assert list(tmp_path.iterdir()) == []

    def test_oversized_batch_spills_wholesale(self, tmp_path):
        q = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        q.offer(make_batch(0, 25))
        assert q.depth_points == 0
        assert q.spill_pending_points == 25
        assert drained_timestamps(q.drain()) == list(range(25))

    def test_spill_segments_are_binary(self, tmp_path):
        """Spill now writes binary columnar segments, not text lines."""
        from repro.tsdb import detect_format

        q = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        q.offer(make_batch(0, 10))
        q.offer(make_batch(10, 10))  # first batch spills
        (seg,) = list(tmp_path.iterdir())
        assert seg.suffix == ".seg"
        assert detect_format(seg) == "binary"

    def test_binary_leftover_segments_adopted_on_restart(self, tmp_path):
        """Crash recovery in the binary format: a new queue adopts the
        previous process's .seg spill files and drains them first."""
        q1 = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        q1.offer(make_batch(0, 10))
        q1.offer(make_batch(10, 10))  # spills batch 0 as a .seg segment
        assert q1.spill_pending_points == 10
        del q1  # "crash"

        q2 = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        assert q2.spill_pending_points == 10
        q2.offer(make_batch(100, 10))
        out = []
        while not q2.is_empty():
            out.extend(drained_timestamps(q2.drain()))
        assert out[:10] == list(range(10))  # adopted rows replay first
        assert out[10:] == list(range(100, 110))
        assert q2.stats.accepted_points == q2.stats.drained_points == 20
        assert list(tmp_path.iterdir()) == []

    def test_torn_leftover_segment_adopts_clean_prefix(self, tmp_path):
        """A spill segment truncated by the crash itself must not kill
        lane construction; its clean prefix is adopted and drains."""
        q1 = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        q1.offer(make_batch(0, 10))
        q1.offer(make_batch(10, 10))   # spills batch 0
        q1.offer(make_batch(20, 10))   # spills batch 1 (second segment)
        (seg0, _seg1) = sorted(tmp_path.iterdir())
        seg0.write_bytes(seg0.read_bytes()[:-5])  # torn tail on segment 0
        del q1  # crash

        q2 = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        # Segment 0's torn block is lost; segment 1 is intact.
        assert q2.spill_pending_points == 10
        out = []
        while not q2.is_empty():
            out.extend(drained_timestamps(q2.drain()))
        assert out == list(range(10, 20))

    def test_unrelated_files_in_spill_dir_are_ignored(self, tmp_path):
        """Files not matching the spill-<seq> naming (operator backups,
        editor droppings) must not crash lane construction or be
        adopted/deleted."""
        (tmp_path / "spill-backup.log").write_text("m 1 2.0\n")
        (tmp_path / "notes.txt").write_text("keep me\n")
        q = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        assert q.spill_pending_points == 0
        q.offer(make_batch(0, 10))
        q.offer(make_batch(10, 10))  # spills
        while not q.is_empty():
            q.drain()
        survivors = {p.name for p in tmp_path.iterdir()}
        assert survivors == {"spill-backup.log", "notes.txt"}

    def test_legacy_text_segments_adopted_alongside_binary(self, tmp_path):
        """A spill dir left by a pre-segment process (text .log files)
        mixes with new binary spill: adoption orders by sequence number
        and auto-detects each file's format."""
        from repro.tsdb import LogWriter

        with LogWriter(tmp_path / "spill-00000000.log") as w:
            w.write_many(list(make_batch(0, 5).iter_points()))
        q = AsyncBatchQueue(10, Backpressure.SPILL, spill_dir=tmp_path)
        assert q.spill_pending_points == 5  # legacy segment adopted
        q.offer(make_batch(100, 10))
        q.offer(make_batch(110, 10))  # spills as binary under the next seq
        out = []
        while not q.is_empty():
            out.extend(drained_timestamps(q.drain()))
        assert out == list(range(5)) + list(range(100, 120))
        assert list(tmp_path.iterdir()) == []


# -- hypothesis: invariants under arbitrary operation sequences ----------
ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.integers(min_value=0, max_value=60)),
        st.tuples(st.just("drain"), st.integers(min_value=1, max_value=80)),
    ),
    min_size=1,
    max_size=40,
)
policies = st.sampled_from(list(Backpressure))


@given(ops, policies, st.integers(min_value=1, max_value=50))
@settings(max_examples=120, deadline=None)
def test_queue_invariants_hold_under_any_op_sequence(op_seq, policy, capacity):
    with tempfile.TemporaryDirectory() as tmp:
        q = AsyncBatchQueue(
            capacity,
            policy,
            spill_dir=Path(tmp) if policy is Backpressure.SPILL else None,
        )
        next_ts = 0
        offered: list[int] = []
        drained: list[int] = []
        held_back = 0  # points refused under block (kept by the producer)
        for op, arg in op_seq:
            if op == "offer":
                batch = make_batch(next_ts, arg)
                accepted = q.offer(batch)
                if accepted:
                    offered.extend(range(next_ts, next_ts + arg))
                else:
                    assert policy is Backpressure.BLOCK
                    held_back += arg
                next_ts += arg
            else:
                drained.extend(drained_timestamps(q.drain(max_points=arg)))
            # Bounded depth: the core invariant, every policy, all times.
            assert q.depth_points <= capacity

        # Exact conservation of accepted points.
        assert q.stats.accepted_points == (
            q.stats.drained_points
            + q.stats.dropped_points
            + q.depth_points
            + q.spill_pending_points
        )
        assert q.stats.offered_points == q.stats.accepted_points + q.stats.refused_points
        if policy is not Backpressure.DROP_OLDEST:
            assert q.stats.dropped_points == 0
        if policy is not Backpressure.BLOCK:
            assert q.stats.refused_points == 0

        remaining = drained_timestamps(q.drain())
        seen = drained + remaining
        if policy is Backpressure.DROP_OLDEST:
            # Whatever survived is a subsequence of what went in, in order.
            assert seen == sorted(seen)
            assert set(seen) <= set(offered)
            assert len(seen) == len(offered) - q.stats.dropped_points
        else:
            # block / spill: every accepted point comes out, in order.
            assert seen == offered
