"""Tests for the LoRaWAN simulator: airtime, radio, devices, network server."""

import numpy as np
import pytest

from repro.geo import GeoPoint, TRONDHEIM
from repro.lorawan import (
    DutyCycle,
    Gateway,
    InvalidSpreadingFactor,
    LoraDevice,
    Measurements,
    NetworkServer,
    PAYLOAD_SIZE,
    PayloadError,
    PropagationModel,
    RadioPlane,
    SENSITIVITY_DBM,
    Uplink,
    airtime_s,
    best_sf_for_distance,
    bitrate_bps,
    decode_measurements,
    decode_measurements_batch,
    encode_measurements,
    uplink_from_json,
    uplink_to_json,
)


class TestAirtime:
    def test_sf_validation(self):
        with pytest.raises(InvalidSpreadingFactor):
            airtime_s(20, 6)

    def test_airtime_monotonic_in_sf(self):
        times = [airtime_s(31, sf) for sf in (7, 8, 9, 10, 11, 12)]
        assert times == sorted(times)
        assert times[0] < 0.1  # SF7 well under 100 ms
        assert times[-1] > 1.0  # SF12 over a second

    def test_airtime_monotonic_in_size(self):
        assert airtime_s(10, 9) < airtime_s(50, 9)

    def test_known_value_sf7(self):
        # 31-byte PHY payload at SF7/125k, CR4/5, 8-symbol preamble: ~71.9 ms
        # (matches the TTN airtime calculator).
        assert airtime_s(31, 7) == pytest.approx(0.0719, abs=0.001)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            airtime_s(-1, 7)

    def test_bitrate_decreases_with_sf(self):
        assert bitrate_bps(7) > bitrate_bps(12)


class TestDutyCycle:
    def test_one_percent_budget(self):
        dc = DutyCycle(limit=0.01, window_s=3600)
        assert dc.can_send(0.0, 36.0)
        dc.record(0.0, 36.0)  # consumes the whole 1% of 3600 s
        assert not dc.can_send(1.0, 0.001)

    def test_window_slides(self):
        dc = DutyCycle(limit=0.01, window_s=3600)
        dc.record(0.0, 36.0)
        assert dc.can_send(3601.0, 36.0)

    def test_used_fraction(self):
        dc = DutyCycle(limit=0.01, window_s=100)
        dc.record(0.0, 0.5)
        assert dc.used(0.0) == pytest.approx(0.005)

    def test_next_allowed(self):
        dc = DutyCycle(limit=0.01, window_s=3600)
        dc.record(100.0, 36.0)
        t = dc.next_allowed(200.0, 1.0)
        assert t >= 3700.0  # must wait for the window to slide past t=100

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            DutyCycle(limit=0.0)


class TestPayloadCodec:
    def test_round_trip(self):
        m = Measurements(
            co2_ppm=412.0,
            no2_ugm3=40.3,
            pm10_ugm3=21.5,
            pm25_ugm3=10.1,
            temperature_c=-12.34,
            pressure_hpa=1013.2,
            humidity_pct=81.25,
            battery_v=3.912,
            sequence=1234,
        )
        out = decode_measurements(encode_measurements(m))
        assert out.co2_ppm == 412.0
        assert out.no2_ugm3 == pytest.approx(40.3)
        assert out.temperature_c == pytest.approx(-12.34)
        assert out.battery_v == pytest.approx(3.912)
        assert out.sequence == 1234

    def test_payload_size(self):
        m = Measurements(400, 10, 10, 5, 0, 1000, 50, 3.7)
        assert len(encode_measurements(m)) == PAYLOAD_SIZE == 18

    def test_clamping_out_of_range(self):
        m = Measurements(99999999, -5, 10, 5, 0, 1000, 50, 3.7)
        out = decode_measurements(encode_measurements(m))
        assert out.co2_ppm == 65535.0
        assert out.no2_ugm3 == 0.0

    def test_wrong_size_rejected(self):
        with pytest.raises(PayloadError):
            decode_measurements(b"\x00" * 5)

    def test_sequence_wraps(self):
        m = Measurements(400, 10, 10, 5, 0, 1000, 50, 3.7, sequence=65536 + 3)
        assert decode_measurements(encode_measurements(m)).sequence == 3


class TestBatchDecode:
    """Vectorized decode must match the scalar codec field-for-field."""

    def _random_measurements(self, n, seed=0):
        rng = np.random.default_rng(seed)
        return [
            Measurements(
                co2_ppm=float(rng.integers(350, 2000)),
                no2_ugm3=float(rng.integers(0, 3000)) / 10.0,
                pm10_ugm3=float(rng.integers(0, 5000)) / 10.0,
                pm25_ugm3=float(rng.integers(0, 2500)) / 10.0,
                temperature_c=float(rng.integers(-3000, 4000)) / 100.0,
                pressure_hpa=float(rng.integers(9000, 10800)) / 10.0,
                humidity_pct=float(rng.integers(0, 10000)) / 100.0,
                battery_v=float(rng.integers(2500, 4200)) / 1000.0,
                sequence=int(rng.integers(0, 65536)),
            )
            for _ in range(n)
        ]

    def test_matches_scalar_decode(self):
        ms = self._random_measurements(200)
        payloads = [encode_measurements(m) for m in ms]
        cols = decode_measurements_batch(payloads)
        for i, p in enumerate(payloads):
            scalar = decode_measurements(p)
            for attr, expected in scalar.as_dict().items():
                assert cols[attr][i] == pytest.approx(expected), attr
            assert int(cols["sequence"][i]) == scalar.sequence

    def test_accepts_preconcatenated_buffer(self):
        ms = self._random_measurements(8, seed=1)
        buf = b"".join(encode_measurements(m) for m in ms)
        cols = decode_measurements_batch(buf)
        assert cols["co2_ppm"].shape == (8,)
        assert cols["co2_ppm"][0] == ms[0].co2_ppm

    def test_empty_input(self):
        cols = decode_measurements_batch([])
        assert cols["co2_ppm"].shape == (0,)

    def test_accepts_generator_input(self):
        ms = self._random_measurements(3, seed=2)
        cols = decode_measurements_batch(encode_measurements(m) for m in ms)
        assert cols["co2_ppm"].shape == (3,)
        assert cols["co2_ppm"][2] == ms[2].co2_ppm

    def test_bad_sizes_rejected(self):
        with pytest.raises(PayloadError):
            decode_measurements_batch([b"\x00" * 17, b"\x00" * 19])
        with pytest.raises(PayloadError):
            decode_measurements_batch(b"\x00" * 19)


class TestPropagation:
    def test_rssi_decreases_with_distance(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        near = model.evaluate(100.0, 9)
        far = model.evaluate(5000.0, 9)
        assert near.rssi_dbm > far.rssi_dbm

    def test_reception_threshold(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert model.evaluate(100.0, 12).received
        assert not model.evaluate(100_000.0, 12).received

    def test_sf12_outranges_sf7(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert model.max_range_m(12) > model.max_range_m(7)

    def test_max_range_consistent_with_evaluate(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        r = model.max_range_m(9)
        assert model.evaluate(r * 0.99, 9).received
        assert not model.evaluate(r * 1.01, 9).received

    def test_shadowing_is_random_but_seeded(self):
        model = PropagationModel(shadowing_sigma_db=7.0)
        losses1 = [
            model.path_loss_db(1000.0, np.random.default_rng(7)) for _ in range(1)
        ]
        losses2 = [
            model.path_loss_db(1000.0, np.random.default_rng(7)) for _ in range(1)
        ]
        assert losses1 == losses2

    def test_margin(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        budget = model.evaluate(100.0, 9)
        assert budget.margin_db == pytest.approx(
            budget.rssi_dbm - SENSITIVITY_DBM[9]
        )

    def test_best_sf_for_distance(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        close = best_sf_for_distance(model, 50.0)
        far = best_sf_for_distance(model, model.max_range_m(12) * 0.9, margin_db=0.0)
        assert close == 7
        assert far in (11, 12)

    def test_best_sf_unreachable(self):
        model = PropagationModel(shadowing_sigma_db=0.0)
        assert best_sf_for_distance(model, 1e7) is None


def make_plane(n_gateways=2, seed=0, sigma=0.0):
    plane = RadioPlane(
        PropagationModel(shadowing_sigma_db=sigma), np.random.default_rng(seed)
    )
    for i in range(n_gateways):
        loc = TRONDHEIM.destination(90.0 * i, 500.0 + 100.0 * i)
        plane.add_gateway(Gateway(f"gw-{i}", loc))
    return plane


class TestRadioPlane:
    def test_duplicate_gateway_rejected(self):
        plane = make_plane(1)
        with pytest.raises(ValueError):
            plane.add_gateway(Gateway("gw-0", TRONDHEIM))

    def test_nearby_uplink_heard_by_all_gateways(self):
        plane = make_plane(2)
        up = Uplink("dev", 0, b"\x00" * 18, sf=9, sent_at=0)
        receptions = plane.transmit(up, TRONDHEIM)
        assert len(receptions) == 2
        assert plane.gateway("gw-0").received_count == 1

    def test_offline_gateway_hears_nothing(self):
        plane = make_plane(2)
        plane.gateway("gw-0").set_online(False)
        up = Uplink("dev", 0, b"\x00" * 18, sf=9, sent_at=0)
        receptions = plane.transmit(up, TRONDHEIM)
        assert [r.gateway_id for r in receptions] == ["gw-1"]

    def test_collision_loses_both_when_close_in_power(self):
        plane = make_plane(1)
        up1 = Uplink("dev-a", 0, b"\x00" * 18, sf=12, sent_at=0)
        up2 = Uplink("dev-b", 0, b"\x00" * 18, sf=12, sent_at=0)
        r1 = plane.transmit(up1, TRONDHEIM)
        r2 = plane.transmit(up2, TRONDHEIM)  # same place, same power, same SF
        assert r1  # first had no contender at transmit time
        assert not r2  # second collides and cannot capture
        assert plane.collisions >= 1

    def test_different_sf_no_collision(self):
        plane = make_plane(1)
        up1 = Uplink("dev-a", 0, b"\x00" * 18, sf=7, sent_at=0)
        up2 = Uplink("dev-b", 0, b"\x00" * 18, sf=12, sent_at=0)
        plane.transmit(up1, TRONDHEIM)
        r2 = plane.transmit(up2, TRONDHEIM)
        assert r2  # orthogonal SFs do not interfere

    def test_non_overlapping_in_time_no_collision(self):
        plane = make_plane(1)
        up1 = Uplink("dev-a", 0, b"\x00" * 18, sf=9, sent_at=0)
        up2 = Uplink("dev-b", 1, b"\x00" * 18, sf=9, sent_at=100)
        plane.transmit(up1, TRONDHEIM)
        assert plane.transmit(up2, TRONDHEIM)

    def test_coverage_report(self):
        plane = make_plane(2)
        locs = [TRONDHEIM.destination(b, 300.0) for b in (0.0, 90.0, 180.0)]
        report = plane.coverage_report(locs, sf=12)
        assert report["covered_fraction"] == 1.0
        assert plane.coverage_report([], sf=12)["covered_fraction"] == 0.0


class TestLoraDevice:
    def test_send_increments_fcnt(self):
        plane = make_plane(1)
        dev = LoraDevice("dev", TRONDHEIM, plane, sf=9)
        r1 = dev.send(b"\x00" * 18, now=0)
        r2 = dev.send(b"\x00" * 18, now=300)
        assert r1.uplink.fcnt == 0
        assert r2.uplink.fcnt == 1
        assert r1.delivered

    def test_duty_cycle_blocks_rapid_fire(self):
        plane = make_plane(1)
        dev = LoraDevice(
            "dev", TRONDHEIM, plane, sf=12, duty_cycle=DutyCycle(limit=0.001)
        )
        results = [dev.send(b"\x00" * 18, now=i) for i in range(10)]
        blocked = [r for r in results if r.blocked_by_duty_cycle]
        assert blocked
        assert blocked[0].deferred_until is not None
        assert dev.duty_blocked == len(blocked)

    def test_set_sf_validates(self):
        dev = LoraDevice("dev", TRONDHEIM, make_plane(1))
        with pytest.raises(InvalidSpreadingFactor):
            dev.set_sf(13)


class TestNetworkServer:
    def make_received(self, ns, fcnt=0, n_rx=2):
        up = Uplink("dev", fcnt, b"\x00" * 18, sf=9, sent_at=0)
        plane = make_plane(n_rx)
        receptions = plane.transmit(up, TRONDHEIM)
        return ns.ingest(up, receptions, now=1)

    def test_dedup_and_forward(self):
        ns = NetworkServer()
        seen = []
        ns.on_uplink(seen.append)
        received = self.make_received(ns)
        assert received is not None
        assert len(seen) == 1
        assert len(received.receptions) == 2
        assert ns.session("dev").duplicates_suppressed == 1

    def test_replay_rejected(self):
        ns = NetworkServer()
        self.make_received(ns, fcnt=5)
        assert self.make_received(ns, fcnt=5) is None
        assert self.make_received(ns, fcnt=4) is None
        assert ns.session("dev").replays_rejected == 2

    def test_no_receptions_not_forwarded(self):
        ns = NetworkServer()
        up = Uplink("dev", 0, b"\x00" * 18, sf=9, sent_at=0)
        assert ns.ingest(up, [], now=1) is None

    def test_offline_server_drops(self):
        ns = NetworkServer(online=False)
        assert self.make_received(ns) is None
        assert ns.stats()["dropped_while_offline"] == 1

    def test_best_reception_is_strongest(self):
        ns = NetworkServer()
        received = self.make_received(ns)
        rssis = [r.rssi_dbm for r in received.receptions]
        assert received.best_reception.rssi_dbm == max(rssis)

    def test_adr_needs_full_window(self):
        ns = NetworkServer()
        self.make_received(ns)
        assert ns.adr_recommendation("dev") is None

    def test_adr_recommends_low_sf_for_strong_link(self):
        ns = NetworkServer()
        for i in range(NetworkServer.ADR_WINDOW):
            self.make_received(ns, fcnt=i)
        assert ns.adr_recommendation("dev") == 7  # node sits 500 m from gw

    def test_json_round_trip(self):
        ns = NetworkServer()
        received = self.make_received(ns)
        restored = uplink_from_json(uplink_to_json(received))
        assert restored.uplink.dev_eui == received.uplink.dev_eui
        assert restored.uplink.payload == received.uplink.payload
        assert restored.receptions == received.receptions
