"""Tests for repro.geo.points."""

import math

import pytest

from repro.geo import (
    EARTH_RADIUS_M,
    TRONDHEIM,
    VEJLE,
    GeoPoint,
    destination_point,
    haversine_m,
    initial_bearing_deg,
)


class TestGeoPoint:
    def test_construction(self):
        p = GeoPoint(63.43, 10.40, 5.0)
        assert p.lat == 63.43
        assert p.lon == 10.40
        assert p.alt == 5.0

    def test_latitude_out_of_range(self):
        with pytest.raises(ValueError, match="latitude"):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError, match="latitude"):
            GeoPoint(-90.1, 0.0)

    def test_longitude_out_of_range(self):
        with pytest.raises(ValueError, match="longitude"):
            GeoPoint(0.0, 180.5)

    def test_poles_and_antimeridian_are_valid(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    def test_hashable(self):
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_as_lonlat_order(self):
        assert GeoPoint(63.0, 10.0).as_lonlat() == (10.0, 63.0)

    def test_distance_to_self_is_zero(self):
        assert TRONDHEIM.distance_to(TRONDHEIM) == 0.0


class TestHaversine:
    def test_known_distance_trondheim_vejle(self):
        # Trondheim to Vejle is roughly 860 km.
        d = TRONDHEIM.distance_to(VEJLE)
        assert 820_000 < d < 900_000

    def test_symmetry(self):
        assert haversine_m(63.4, 10.4, 55.7, 9.5) == pytest.approx(
            haversine_m(55.7, 9.5, 63.4, 10.4)
        )

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km on a sphere.
        d = haversine_m(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(EARTH_RADIUS_M * math.pi / 180.0, rel=1e-9)

    def test_small_distance_accuracy(self):
        # 100 m north of Trondheim centre.
        p = TRONDHEIM.destination(0.0, 100.0)
        assert TRONDHEIM.distance_to(p) == pytest.approx(100.0, abs=0.01)

    def test_antipodal(self):
        d = haversine_m(0.0, 0.0, 0.0, 180.0)
        assert d == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-6)


class TestBearing:
    def test_due_north(self):
        assert initial_bearing_deg(0.0, 0.0, 1.0, 0.0) == pytest.approx(0.0)

    def test_due_east(self):
        assert initial_bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0)

    def test_due_south(self):
        assert initial_bearing_deg(1.0, 0.0, 0.0, 0.0) == pytest.approx(180.0)

    def test_range(self):
        b = initial_bearing_deg(63.4, 10.4, 55.7, 9.5)
        assert 0.0 <= b < 360.0


class TestDestination:
    def test_round_trip_distance(self):
        dest = TRONDHEIM.destination(45.0, 5000.0)
        assert TRONDHEIM.distance_to(dest) == pytest.approx(5000.0, rel=1e-6)

    def test_zero_distance(self):
        lat, lon = destination_point(63.4, 10.4, 123.0, 0.0)
        assert lat == pytest.approx(63.4)
        assert lon == pytest.approx(10.4)

    def test_longitude_normalized(self):
        lat, lon = destination_point(0.0, 179.9, 90.0, 50_000.0)
        assert -180.0 <= lon <= 180.0

    def test_preserves_altitude(self):
        p = GeoPoint(63.4, 10.4, alt=12.0).destination(0.0, 100.0)
        assert p.alt == 12.0
