"""Serving-layer tests: cache validity, incremental refresh, live server.

Three correctness contracts, in increasing integration order:

- :class:`~repro.serve.cache.CachingStore` answers are **byte-identical**
  to uncached ``run_many`` and invalidation is exact: a write to a
  matched series (on any shard) drops precisely the entries it can
  affect, a raced write is never stamped fresh;
- :class:`~repro.serve.refresh.IncrementalRefresher` output equals a
  full re-scan under arbitrary interleavings of appends and window
  slides (hypothesis), while actually taking the incremental path in
  steady state;
- the asyncio :class:`~repro.serve.server.QueryServer` serves N
  concurrent clients the same bytes the store produces, survives
  malformed requests without dropping the connection, and applies
  per-tenant admission control.
"""

import asyncio
import contextlib
import json
import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    CachingStore,
    IncrementalRefresher,
    QueryClient,
    QueryServer,
    TenantPolicy,
)
from repro.serve.cache import ResultCache
from repro.tsdb import Query, ShardedTSDB, TSDB, wire


def _seeded(store, n=12, nodes="ab"):
    for i in range(n):
        for node in nodes:
            store.put("air.co2.ppm", i * 300, 400.0 + i + ord(node),
                      {"node": node, "city": "trondheim"})
    return store


def _same_bytes(a, b):
    """Results are interchangeable iff their wire encodings are equal."""
    return wire.response_to_json([a]) == wire.response_to_json([b])


def _same_series(a, b):
    """Series-content equality through the wire encoding.

    ``scannedPoints`` is excluded: an incremental refresh honestly
    reports only the points its delta scanned — the *series* are what
    is guaranteed byte-identical.
    """
    return (wire.encode_response([a])["results"][0]["series"]
            == wire.encode_response([b])["results"][0]["series"])


@pytest.fixture(params=["single", "sharded"])
def store(request):
    return _seeded(TSDB() if request.param == "single" else ShardedTSDB(4))


class TestCachingStore:
    def test_hit_returns_identical_result(self, store):
        caching = CachingStore(store)
        q = Query("air.co2.ppm", 0, 4000, downsample="10m-avg")
        first = caching.run_many([q])[0]
        second = caching.run_many([q])[0]
        assert second is first  # the very same object: byte-identical
        assert caching.cache.stats.hits == 1
        assert _same_bytes(first, store.run_many([q])[0])

    def test_write_to_matched_series_invalidates(self, store):
        caching = CachingStore(store)
        q = Query("air.co2.ppm", 0, 10_000, tags={"node": "a"})
        stale = caching.run_many([q])[0]
        store.put("air.co2.ppm", 9000, 999.0,
                  {"node": "a", "city": "trondheim"})
        fresh = caching.run_many([q])[0]
        assert fresh is not stale
        assert caching.cache.stats.invalidated == 1
        assert 999.0 in list(fresh.series[0].values)
        assert _same_bytes(fresh, store.run_many([q])[0])

    def test_write_to_unmatched_series_keeps_entry(self, store):
        caching = CachingStore(store)
        qa = Query("air.co2.ppm", 0, 10_000, tags={"node": "a"})
        qb = Query("air.co2.ppm", 0, 10_000, tags={"node": "b"})
        a1, _ = caching.run_many([qa, qb])
        store.put("air.co2.ppm", 9000, 999.0,
                  {"node": "b", "city": "trondheim"})
        a2, b2 = caching.run_many([qa, qb])
        assert a2 is a1  # node=a untouched: still served from cache
        assert 999.0 in list(b2.series[0].values)

    def test_new_series_under_metric_invalidates_match(self, store):
        caching = CachingStore(store)
        q = Query("air.co2.ppm", 0, 10_000, group_by=("node",))
        first = caching.run_many([q])[0]
        assert len(first.series) == 2
        store.put("air.co2.ppm", 600, 1.0, {"node": "c", "city": "vejle"})
        second = caching.run_many([q])[0]
        assert len(second.series) == 3
        assert _same_bytes(second, store.run_many([q])[0])

    def test_interleaved_writes_stay_byte_identical(self, store):
        """The headline contract, under a write/read interleaving."""
        mirror = _seeded(TSDB())  # uncached reference
        caching = CachingStore(store)
        qs = [
            Query("air.co2.ppm", 0, 40_000, downsample="10m-avg"),
            Query("air.co2.ppm", 0, 40_000, aggregator="count",
                  group_by=("node",)),
            Query("air.co2.ppm", 0, 40_000, tags={"node": "b"}),
        ]
        for round_no in range(6):
            got = caching.run_many(qs)
            want = mirror.run_many(qs)
            assert wire.response_to_json(got) == wire.response_to_json(want)
            ts = 4000 + round_no * 300
            node = "ab"[round_no % 2]
            for s in (store, mirror):
                s.put("air.co2.ppm", ts, float(round_no),
                      {"node": node, "city": "trondheim"})
        stats = caching.cache.stats
        assert stats.hits > 0 and stats.invalidated > 0

    def test_raced_write_is_never_cached(self, store):
        cache = ResultCache()
        q = Query("air.co2.ppm", 0, 10_000)
        validators = cache.capture(store, q)
        result = store.run_many([q])[0]
        store.put("air.co2.ppm", 9000, 1.0,
                  {"node": "a", "city": "trondheim"})  # the "race"
        assert cache.insert(store, q, validators, result) is False
        assert cache.stats.skipped == 1
        assert cache.lookup(store, q) is None

    def test_lru_eviction(self, store):
        caching = CachingStore(store, capacity=2)
        qs = [Query("air.co2.ppm", 0, 1000 * i) for i in (1, 2, 3)]
        for q in qs:
            caching.run_many([q])
        assert len(caching.cache) == 2
        assert caching.cache.stats.evicted == 1
        caching.run_many([qs[0]])  # evicted: a miss again
        assert caching.cache.stats.hits == 0


class TestIncrementalRefresher:
    def test_steady_state_takes_incremental_path(self):
        db = _seeded(TSDB())
        refresher = IncrementalRefresher(db)
        q1 = Query("air.co2.ppm", 0, 4000, downsample="10m-avg")
        full = refresher.run(q1)
        db.put("air.co2.ppm", 4500, 500.0, {"node": "a", "city": "trondheim"})
        q2 = Query("air.co2.ppm", 0, 5000, downsample="10m-avg")
        inc = refresher.run(q2)
        assert refresher.stats.full_runs == 1
        assert refresher.stats.incremental_runs == 1
        assert inc.scanned_points < full.scanned_points
        assert _same_series(inc, db.run_many([q2])[0])

    def test_unchanged_window_is_cache_only(self):
        db = _seeded(TSDB())
        refresher = IncrementalRefresher(db)
        # end == the newest point: everything in-window is final history
        q = Query("air.co2.ppm", 0, 3300)
        first = refresher.run(q)
        second = refresher.run(q)
        assert refresher.stats.cache_only_runs == 1
        assert second.scanned_points == 0
        assert _same_series(first, second)

    def test_rate_always_runs_full(self):
        db = _seeded(TSDB())
        refresher = IncrementalRefresher(db)
        q = Query("air.co2.ppm", 0, 4000, rate=True)
        refresher.run(q)
        refresher.run(q)
        assert refresher.stats.full_runs == 2
        assert refresher.stats.incremental_runs == 0

    def test_out_of_order_write_invalidates(self):
        db = _seeded(TSDB())
        refresher = IncrementalRefresher(db)
        refresher.run(Query("air.co2.ppm", 0, 4000))
        # Lands *before* the series maximum: history is no longer final.
        db.put("air.co2.ppm", 150, 7.0, {"node": "a", "city": "trondheim"})
        q = Query("air.co2.ppm", 0, 5000)
        out = refresher.run(q)
        assert refresher.stats.invalidated == 1
        assert refresher.stats.incremental_runs == 0
        assert _same_series(out, db.run_many([q])[0])

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_property_refresh_equals_full_rescan(self, data):
        """Any append/slide interleaving: refresher ≡ fresh run_many."""
        db = TSDB()
        refresher = IncrementalRefresher(db)
        agg = data.draw(st.sampled_from(("avg", "count", "max", "dev")))
        downsample = data.draw(
            st.sampled_from((None, "10s-avg", "10s-avg-zero", "10s-count")))
        group_by = data.draw(st.sampled_from(((), ("node",))))
        now = 0
        for _ in range(data.draw(st.integers(2, 6))):
            for _ in range(data.draw(st.integers(0, 15))):
                now += data.draw(st.integers(1, 9))
                db.put("m", now, float(data.draw(st.integers(-5, 5))),
                       {"node": data.draw(st.sampled_from("ab"))})
            start = data.draw(st.sampled_from(
                (0, max(0, now - 60), max(0, (now - 60) // 10 * 10))))
            end = now + data.draw(st.integers(0, 5))
            if end < start:
                continue
            q = Query("m", start, end, aggregator=agg,
                      downsample=downsample, group_by=group_by)
            got = refresher.run(q)
            want = db.run_many([q])[0]
            assert _same_series(got, want)


# -- live-server integration ------------------------------------------------

@contextlib.contextmanager
def live_server(store, **kwargs):
    """A QueryServer on its own event-loop thread, torn down cleanly."""
    server = QueryServer(store, port=0, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    stop_event: list[asyncio.Event] = []

    async def main():
        stop = asyncio.Event()
        stop_event.append(stop)
        await server.start()
        started.set()
        await stop.wait()
        await server.stop()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(main()), daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(stop_event[0].set)
        thread.join(timeout=10)
        loop.close()


class _SlowStore(TSDB):
    """A store whose batch execution takes a visible amount of time."""

    def _run_unique_batch(self, queries, parallel=None):
        time.sleep(0.05)
        return super()._run_unique_batch(queries, parallel=parallel)


def _raw_exchange(address, *lines):
    """Send raw request lines over one connection; one reply line each."""
    with socket.create_connection(address, timeout=10) as sock:
        file = sock.makefile("rb")
        replies = []
        for line in lines:
            sock.sendall(line if isinstance(line, bytes) else line.encode())
            replies.append(json.loads(file.readline()))
        return replies


def _pipelined_exchange(address, *lines):
    """Send every line up front, then collect one reply per line."""
    with socket.create_connection(address, timeout=10) as sock:
        file = sock.makefile("rb")
        sock.sendall(b"".join(
            line if isinstance(line, bytes) else line.encode()
            for line in lines))
        return [json.loads(file.readline()) for _ in lines]


class TestQueryServer:
    def test_concurrent_clients_get_store_bytes(self, store):
        qs = [
            Query("air.co2.ppm", 0, 4000, downsample="10m-avg"),
            Query("air.co2.ppm", 0, 4000, group_by=("node",)),
        ]
        want = wire.encode_response(store.run_many(qs))
        failures = []

        def one_client(i):
            try:
                with QueryClient(*server.address, tenant=f"t{i % 3}") as c:
                    for _ in range(4):
                        got = c.request(qs)
                        got.pop("id", None)
                        if got != want:
                            failures.append(got)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        with live_server(store) as server:
            threads = [threading.Thread(target=one_client, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not failures
            stats = server.stats()
        assert stats["requests"] == 32
        assert stats["cache"]["hits"] >= 32 - len(qs)
        assert set(stats["tenants"]) == {"t0", "t1", "t2"}
        assert sum(lane["admitted"]
                   for lane in stats["tenants"].values()) == 32

    def test_malformed_lines_keep_connection_usable(self, store):
        good = json.dumps(
            {**wire.encode_request([Query("air.co2.ppm", 0, 4000)]),
             "id": 7}) + "\n"
        with live_server(store) as server:
            replies = _raw_exchange(
                server.address,
                "this is not json\n",
                '"a json string, not an object"\n',
                json.dumps({"version": 99, "queries": []}) + "\n",
                json.dumps({"version": wire.WIRE_VERSION,
                            "queries": [{"metric": "m", "start": True,
                                         "end": 4}]}) + "\n",
                good,
            )
        assert [r["error"]["type"] for r in replies[:4]] == ["WireError"] * 4
        assert replies[4]["id"] == 7 and "results" in replies[4]

    def test_store_fault_answers_internal_error(self):
        class ExplodingStore(TSDB):
            def _run_unique_batch(self, queries, parallel=None):
                raise RuntimeError("disk on fire")

        with live_server(_seeded(ExplodingStore())) as server:
            (reply,) = _raw_exchange(
                server.address,
                json.dumps(wire.encode_request(
                    [Query("air.co2.ppm", 0, 100)])) + "\n")
        assert reply["error"]["type"] == "InternalError"
        assert "disk on fire" in reply["error"]["message"]

    def test_drop_oldest_admission_answers_overloaded(self):
        policy = TenantPolicy(max_pending=1, backpressure="drop-oldest",
                              parallelism=1)
        line = json.dumps(wire.encode_request(
            [Query("air.co2.ppm", 0, 4000)])) + "\n"
        with live_server(_seeded(_SlowStore()),
                         default_policy=policy) as server:
            replies = _pipelined_exchange(server.address, *([line] * 8))
            stats = server.stats()
        dropped = [r for r in replies if "error" in r]
        served = [r for r in replies if "results" in r]
        assert dropped and served  # overload answered, not wedged
        assert all(r["error"]["type"] == "Overloaded" for r in dropped)
        assert stats["tenants"]["public"]["dropped"] == len(dropped)

    def test_refresh_flag_routes_through_refresher(self, store):
        q = Query("air.co2.ppm", 0, 4000, downsample="10m-avg")
        want = store.run_many([q])[0]
        with live_server(store) as server:
            with QueryClient(*server.address) as client:
                first = client.run_many([q], refresh=True)
                second = client.run_many([q], refresh=True)
            stats = server.stats()
        assert stats["refresh"]["full_runs"] == 1
        assert (stats["refresh"]["incremental_runs"]
                + stats["refresh"]["cache_only_runs"]) == 1
        for decoded in (first[0], second[0]):
            assert list(decoded.series[0].values) == \
                list(want.series[0].slice.values)

    def test_client_remote_error_not_retried(self, store):
        with live_server(store) as server:
            with QueryClient(*server.address, retries=3) as client:
                with pytest.raises(wire.RemoteQueryError) as err:
                    client.request = _bad_version_request.__get__(client)
                    client.run_many([Query("air.co2.ppm", 0, 100)])
            stats = server.stats()
        assert err.value.error_type == "WireError"
        assert stats["requests"] == 1  # one answer, zero retries

    def test_client_exhausts_retries_against_dead_port(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        client = QueryClient("127.0.0.1", dead_port, retries=1,
                             backoff=0.001, timeout=0.5)
        with pytest.raises(OSError):
            client.run_many([Query("m", 0, 1)])


def _bad_version_request(self, queries, *, refresh=False):
    """A client whose wire version drifted: server must answer in-band."""
    envelope = wire.encode_request(queries)
    envelope["version"] = 99
    line = json.dumps(envelope).encode() + b"\n"
    self.connect()
    self._sock.sendall(line)
    return json.loads(self._file.readline())


class TestCatalogService:
    """The series-metadata surface, end to end over TCP."""

    def test_catalog_over_the_wire(self, store):
        with live_server(store) as server:
            with QueryClient(*server.address) as c:
                assert c.catalog("metrics") == ["air.co2.ppm"]
                assert c.catalog("tag_keys", metric="air.co2.ppm") == [
                    "city", "node"]
                assert c.catalog(
                    "tag_values", metric="air.co2.ppm", key="node"
                ) == ["a", "b"]
                assert c.catalog(
                    "cardinality", metric="air.co2.ppm",
                    tags={"node": "*"},
                ) == 2
                assert c.catalog("tag_keys", metric="no.such.metric") == []

    def test_catalog_cache_hits_then_invalidates(self, store):
        with live_server(store) as server:
            with QueryClient(*server.address) as c:
                for _ in range(3):
                    assert c.catalog(
                        "tag_values", metric="air.co2.ppm", key="node"
                    ) == ["a", "b"]
                stats = server.stats()["catalog_cache"]
                assert stats["hits"] == 2 and stats["misses"] == 1
                # A new series under the metric moves its generation:
                # the cached answer must be dropped, not served stale.
                store.put("air.co2.ppm", 0, 400.0,
                          {"node": "z", "city": "trondheim"})
                assert c.catalog(
                    "tag_values", metric="air.co2.ppm", key="node"
                ) == ["a", "b", "z"]
                assert server.stats()["catalog_cache"]["invalidated"] == 1

    def test_whole_catalog_answers_track_any_metric_change(self, store):
        with live_server(store) as server:
            with QueryClient(*server.address) as c:
                assert c.catalog("metrics") == ["air.co2.ppm"]
                store.put("weather.temperature.c", 0, 3.0, {"city": "x"})
                assert c.catalog("metrics") == [
                    "air.co2.ppm", "weather.temperature.c"]

    def test_malformed_catalog_request_answered_in_band(self, store):
        with live_server(store) as server:
            (reply,) = _raw_exchange(
                server.address,
                json.dumps({"version": wire.WIRE_VERSION,
                            "catalog": {"op": "nope"}}) + "\n",
            )
            assert reply["error"]["type"] == "WireError"
            # ... and the connection stays usable afterwards.
            with QueryClient(*server.address) as c:
                assert c.catalog("metrics") == ["air.co2.ppm"]

    def test_max_match_series_guards_queries(self, store):
        with live_server(store, max_match_series=1) as server:
            with QueryClient(*server.address) as c:
                wide = Query("air.co2.ppm", 0, 4000, tags={"node": "*"})
                with pytest.raises(wire.RemoteQueryError) as err:
                    c.run(wide)
                assert err.value.error_type == "CardinalityLimitError"
                assert "matches 2 series" in err.value.message
                # Narrow queries under the limit still execute.
                got = c.run(Query("air.co2.ppm", 0, 4000,
                                  tags={"node": "a"}))
                assert len(got.series) == 1
                # The guard also covers expression operands.
                from repro.tsdb import expr
                e = expr("a + b",
                         a=Query("air.co2.ppm", 0, 4000,
                                 tags={"node": "*"}),
                         b=Query("air.co2.ppm", 0, 4000,
                                 tags={"node": "a"}))
                with pytest.raises(wire.RemoteQueryError) as err:
                    c.run(e)
                assert err.value.error_type == "CardinalityLimitError"

    def test_per_tenant_limit_overrides_server_wide(self, store):
        # One tenant's wildcard storms are capped per-lane; the limit
        # may be tighter *or* looser than the server's.
        wide = Query("air.co2.ppm", 0, 4000, tags={"node": "*"})
        policies = {
            "tight": TenantPolicy(max_match_series=1),
            "loose": TenantPolicy(max_match_series=10),
        }
        with live_server(store, max_match_series=10,
                         tenant_policies=policies) as server:
            with QueryClient(*server.address, tenant="tight") as c:
                with pytest.raises(wire.RemoteQueryError) as err:
                    c.run(wide)
                assert err.value.error_type == "CardinalityLimitError"
                assert "tenant's 1-series limit" in err.value.message
            # The capped tenant can still run narrow queries...
            with QueryClient(*server.address, tenant="tight") as c:
                got = c.run(Query("air.co2.ppm", 0, 4000,
                                  tags={"node": "a"}))
                assert len(got.series) == 1
            # ...and other tenants are untouched by its cap.
            with QueryClient(*server.address, tenant="loose") as c:
                assert c.run(wide).scanned_points == 24
            with QueryClient(*server.address) as c:
                assert c.run(wide).scanned_points == 24
        # A looser tenant limit also relaxes a tight server-wide one.
        with live_server(store, max_match_series=1,
                         tenant_policies=policies) as server:
            with QueryClient(*server.address, tenant="loose") as c:
                assert c.run(wide).scanned_points == 24
            with QueryClient(*server.address) as c:
                with pytest.raises(wire.RemoteQueryError) as err:
                    c.run(wide)
                assert "server's 1-series limit" in err.value.message

    def test_ingest_guard_error_type_matches_wire_contract(self):
        # The ingest-side guard raises the same error type the server
        # reports, so clients key on one name for both guard-rails.
        limited = _seeded(TSDB(max_tag_values=2))
        with pytest.raises(Exception) as err:
            limited.put("air.co2.ppm", 0, 1.0,
                        {"node": "c", "city": "trondheim"})
        assert type(err.value).__name__ == "CardinalityLimitError"


def _refused_port() -> int:
    """A port with nothing listening: bind, note, close."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestClientRetryPolicy:
    """Satellite: jittered backoff + total-elapsed deadline in the SDK."""

    def test_jitter_out_of_range_rejected(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError, match="jitter"):
                QueryClient("127.0.0.1", 1, jitter=bad)

    def test_injected_rng_pins_the_jittered_delays(self, monkeypatch):
        """With ``rng`` injected, every backoff sleep is exact: the
        base exponential curve scaled by ``1 + jitter*(2*rng() - 1)``."""
        delays: list[float] = []
        monkeypatch.setattr(time, "sleep", delays.append)
        client = QueryClient(
            "127.0.0.1", _refused_port(), retries=3, backoff=0.1,
            jitter=0.5, rng=lambda: 1.0, timeout=0.5,
        )
        with pytest.raises(OSError):
            client.request([Query("m", 0, 10)])
        assert delays == pytest.approx([0.15, 0.3, 0.6])  # x1.5 each
        delays.clear()
        low = QueryClient(
            "127.0.0.1", _refused_port(), retries=2, backoff=0.1,
            jitter=0.5, rng=lambda: 0.0, timeout=0.5,
        )
        with pytest.raises(OSError):
            low.request([Query("m", 0, 10)])
        assert delays == pytest.approx([0.05, 0.1])  # x0.5 each

    def test_deadline_caps_the_whole_retry_sequence(self):
        """A huge backoff cannot block past the deadline: sleeps are
        clipped to the time remaining and retries stop when it's spent."""
        client = QueryClient(
            "127.0.0.1", _refused_port(), retries=50, backoff=10.0,
            jitter=0.0, deadline=0.2, timeout=0.5,
        )
        t0 = time.monotonic()
        with pytest.raises(OSError):
            client.request([Query("m", 0, 10)])
        assert time.monotonic() - t0 < 2.0  # not 10s, let alone 50 tries

    def test_no_deadline_keeps_full_backoff(self, monkeypatch):
        delays: list[float] = []
        monkeypatch.setattr(time, "sleep", delays.append)
        client = QueryClient(
            "127.0.0.1", _refused_port(), retries=4, backoff=0.1,
            jitter=0.0, timeout=0.5,
        )
        with pytest.raises(OSError):
            client.request([Query("m", 0, 10)])
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])


class TestGracefulStop:
    """Satellite: draining ``stop()`` answers every admitted request."""

    def test_stop_drains_in_flight_requests(self):
        store = _seeded(_SlowStore())
        q = Query("air.co2.ppm", 0, 4000, downsample="10m-avg")
        replies: list = []

        with live_server(store) as server:
            done = threading.Event()

            def one_slow_client():
                try:
                    with QueryClient(*server.address, timeout=30,
                                     retries=0) as c:
                        replies.append(c.request([q]))
                except Exception as exc:  # pragma: no cover - diagnostic
                    replies.append(exc)
                finally:
                    done.set()

            t = threading.Thread(target=one_slow_client)
            t.start()
            # Let the request get admitted (the slow store is executing),
            # then let teardown stop the server underneath it.
            time.sleep(0.2)
            assert server._lanes  # a lane exists => request admitted
        # live_server teardown ran server.stop() (drain=True): the
        # admitted request must still have been answered.
        assert done.wait(10)
        t.join(timeout=10)
        assert replies and isinstance(replies[0], dict), repr(replies)
        assert "results" in replies[0]

    def test_stopping_server_refuses_new_connections(self):
        store = _seeded(TSDB())
        with live_server(store) as server:
            address = server.address
            with QueryClient(*address, retries=0) as c:
                c.run(Query("air.co2.ppm", 0, 4000))
        # After teardown the listener is gone.
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5).close()

    def test_hard_stop_is_still_available(self):
        """``drain=False`` preserves the old immediate-cancel behavior."""
        store = _seeded(_SlowStore())
        server = QueryServer(store, port=0)

        async def run():
            await server.start()
            await server.stop(drain=False)

        asyncio.run(run())  # returns promptly; nothing hangs
