"""Golden equivalence suite for the v2 query engine.

The query API was redesigned (builder, batched ``run_many``, shard
pushdown, expression queries) but *not* changed: every redesigned
surface must return byte-identical results to the seed query path —
``execute_query`` over per-query match + direct scans, exactly what the
seed ``TSDB.run`` did.  This suite pins that equivalence on single and
sharded stores for n ∈ {1, 2, 4, 7}, with the thread-pooled fan-out on
and off, plus the semantics of the new surfaces themselves.
"""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.tsdb import (
    ExprQuery,
    Query,
    QueryError,
    ShardedTSDB,
    TSDB,
    execute_query,
    expr,
    select,
)
from repro.tsdb.plan import ScanPlan

SHARD_COUNTS = (1, 2, 4, 7)
METRICS = ("air.co2.ppm", "air.no2.ugm3", "weather.temperature.c",
           "traffic.count.vehicles")
NODES = tuple(f"ctt-{i:02d}" for i in range(9))
CITIES = ("trondheim", "vejle")


def seed_run(db: TSDB, query: Query):
    """The seed one-shot path: per-query match + direct scans.

    This is exactly what ``TSDB.run`` did before the planner existed;
    everything new is measured against it.
    """
    matched = db._match(query.metric, query.tags)
    return execute_query(
        query,
        matched,
        lambda key: db._stores[key].scan(query.start, query.end),
    )


def random_rows(seed: int, n: int = 3_000):
    rng = np.random.default_rng(seed)
    metrics = rng.integers(0, len(METRICS), size=n)
    nodes = rng.integers(0, len(NODES), size=n)
    cities = rng.integers(0, len(CITIES), size=n)
    ts = rng.integers(0, 5_000, size=n) * 60
    late = rng.random(n) < 0.05
    ts[late] -= 720
    values = rng.normal(400.0, 25.0, size=n)
    # A sprinkle of NaNs exercises the aggregators' masking paths.
    values[rng.random(n) < 0.01] = np.nan
    return [
        (METRICS[int(m)], int(t), float(v),
         {"node": NODES[int(nd)], "city": CITIES[int(c)]})
        for m, t, v, nd, c in zip(metrics, ts, values, nodes, cities)
    ]


def build_stores(seed: int = 2026):
    rows = random_rows(seed)
    single = TSDB()
    shardeds = [ShardedTSDB(n) for n in SHARD_COUNTS]
    for metric, ts, value, tags in rows:
        single.put(metric, ts, value, tags)
        for sh in shardeds:
            sh.put(metric, ts, value, tags)
    return single, shardeds


@pytest.fixture(scope="module")
def stores():
    return build_stores()


def assert_results_identical(a, b):
    assert len(a) == len(b)
    assert a.scanned_points == b.scanned_points
    for ra, rb in zip(a, b):
        assert ra.metric == rb.metric
        assert dict(ra.group_tags) == dict(rb.group_tags)
        assert ra.source_series == rb.source_series
        assert np.array_equal(ra.timestamps, rb.timestamps)
        assert np.array_equal(ra.values, rb.values, equal_nan=True)


#: Query mix covering every plan shape: plain merges, wildcard and
#: alternation filters, mergeable pushdown aggregators (min/max/count),
#: float-fold aggregators that must run centrally (avg/sum/dev/p95),
#: group-by (single-series groups = full local pushdown), rate,
#: downsampling with fill policies, and an unmatched metric.
QUERIES = [
    Query("air.co2.ppm", 0, 400_000),
    Query("air.co2.ppm", 50_000, 200_000, tags={"city": "trondheim"}),
    Query("air.no2.ugm3", 0, 400_000, tags={"node": "*"}, aggregator="sum"),
    Query("air.no2.ugm3", 0, 400_000, tags={"node": "ctt-01|ctt-04"},
          aggregator="max"),
    Query("air.co2.ppm", 0, 400_000, aggregator="min"),
    Query("air.co2.ppm", 0, 400_000, aggregator="count"),
    Query("air.co2.ppm", 0, 400_000, aggregator="max", downsample="1h-max"),
    Query("weather.temperature.c", 0, 400_000, aggregator="dev"),
    Query("weather.temperature.c", 0, 400_000, aggregator="p95",
          downsample="5m-avg"),
    Query("weather.temperature.c", 0, 400_000, group_by=["node"]),
    Query("air.co2.ppm", 0, 400_000, group_by=["city", "node"],
          aggregator="min"),
    Query("air.co2.ppm", 0, 400_000, downsample="5m-avg-nan"),
    Query("weather.temperature.c", 0, 400_000, downsample="1h-max",
          group_by=["city"]),
    Query("traffic.count.vehicles", 0, 400_000, rate=True),
    Query("traffic.count.vehicles", 0, 400_000, rate=True,
          aggregator="count", downsample="1h-sum-zero"),
    Query("no.such.metric", 0, 400_000),
]


class TestShimEquivalence:
    """run / query / query_range are thin shims over the planner."""

    def test_single_store_run_matches_seed(self, stores):
        single, _ = stores
        for q in QUERIES:
            assert_results_identical(single.run(q), seed_run(single, q))

    def test_query_helper_matches_seed(self, stores):
        single, _ = stores
        q = QUERIES[1]
        res = single.query(
            q.metric, q.start, q.end, tags=dict(q.tags),
        )
        assert_results_identical(res, seed_run(single, q))

    def test_query_range_matches_seed(self, stores):
        single, _ = stores
        q = QUERIES[0]
        rs = single.query_range(q.metric, q.start, q.end)
        ref = seed_run(single, q).single()
        assert np.array_equal(rs.timestamps, ref.timestamps)
        assert np.array_equal(rs.values, ref.values, equal_nan=True)


@pytest.mark.parametrize("n", SHARD_COUNTS)
class TestShardedEquivalence:
    """Pushdown fan-out == seed central plan, any shard count, serial
    or thread-pooled."""

    def _sharded(self, stores, n):
        return stores[1][SHARD_COUNTS.index(n)]

    def test_run_matches_seed(self, stores, n):
        single, _ = stores
        sharded = self._sharded(stores, n)
        for q in QUERIES:
            assert_results_identical(sharded.run(q), seed_run(single, q))

    def test_parallel_switch_byte_identical(self, stores, n):
        sharded = self._sharded(stores, n)
        serial = sharded.run_many(QUERIES, parallel=False)
        pooled = sharded.run_many(QUERIES, parallel=True)
        for a, b in zip(serial, pooled):
            assert_results_identical(a, b)

    def test_run_many_matches_sequential_runs(self, stores, n):
        sharded = self._sharded(stores, n)
        batch = sharded.run_many(QUERIES)
        for q, res in zip(QUERIES, batch):
            assert_results_identical(res, sharded.run(q))

    def test_result_carries_original_query(self, stores, n):
        sharded = self._sharded(stores, n)
        batch = sharded.run_many(QUERIES)
        for q, res in zip(QUERIES, batch):
            assert res.query is q


class TestRunManyBatching:
    def test_single_store_batch_matches_seed(self, stores):
        single, _ = stores
        for q, res in zip(QUERIES, single.run_many(QUERIES)):
            assert_results_identical(res, seed_run(single, q))

    def test_duplicate_queries_share_execution(self, stores):
        single, _ = stores
        q = QUERIES[0]
        dup = Query(q.metric, q.start, q.end)
        a, b = single.run_many([q, dup])
        assert a.query is q and b.query is dup
        assert a.series is b.series  # one execution, shared series

    def test_overlapping_ranges_subslice_exactly(self, stores):
        """Queries with different ranges share one covering scan; the
        sub-ranges must equal direct scans."""
        single, _ = stores
        qs = [
            Query("air.co2.ppm", 0, 400_000),
            Query("air.co2.ppm", 120_000, 130_000),
            Query("air.co2.ppm", 60_000, 300_000, downsample="5m-avg"),
        ]
        for q, res in zip(qs, single.run_many(qs)):
            assert_results_identical(res, seed_run(single, q))

    def test_empty_batch(self, stores):
        single, _ = stores
        assert single.run_many([]) == []

    def test_rejects_non_queries(self, stores):
        single, _ = stores
        with pytest.raises(QueryError):
            single.run_many(["air.co2.ppm"])


class TestBuilder:
    def test_builder_builds_equivalent_query(self):
        q = (
            select("air.co2.ppm")
            .where(city="trondheim", node="*")
            .range(0, 3600)
            .downsample("5m-avg")
            .rate()
            .group_by("node")
            .build()
        )
        assert q == Query(
            "air.co2.ppm", 0, 3600,
            tags={"city": "trondheim", "node": "*"},
            downsample="5m-avg", rate=True, group_by=("node",),
        )

    def test_builder_is_immutable_and_forkable(self):
        base = select("air.co2.ppm").range(0, 100)
        a = base.where(node="a")
        b = base.where(node="b").aggregate("max")
        assert base.build().tags == {}
        assert a.build().tags == {"node": "a"}
        assert b.build().aggregator == "max"

    def test_bound_builder_runs_through_planner(self, stores):
        single, _ = stores
        q = Query("air.co2.ppm", 0, 400_000, tags={"city": "vejle"})
        res = (
            single.select("air.co2.ppm").where(city="vejle")
            .range(0, 400_000).run()
        )
        assert_results_identical(res, seed_run(single, q))

    def test_sharded_builder_identical_to_single(self, stores):
        single, shardeds = stores
        for sharded in shardeds:
            res = (
                sharded.select("weather.temperature.c").where(node="ctt-03")
                .range(0, 400_000).downsample("15m-avg").run()
            )
            ref = (
                single.select("weather.temperature.c").where(node="ctt-03")
                .range(0, 400_000).downsample("15m-avg").run()
            )
            assert_results_identical(res, ref)

    def test_unbound_builder_requires_store(self):
        with pytest.raises(QueryError):
            select("m").range(0, 1).run()

    def test_builder_missing_range(self):
        with pytest.raises(QueryError):
            select("m").build()

    def test_builders_accepted_by_run_many(self, stores):
        single, _ = stores
        b = select("air.co2.ppm").range(0, 400_000)
        q = Query("air.co2.ppm", 0, 400_000)
        a, ref = single.run_many([b, q])
        assert a.series is ref.series


class TestFailFast:
    """Malformed queries die at construction, not mid-execution."""

    def test_empty_metric(self):
        with pytest.raises(QueryError):
            Query("", 0, 100)

    def test_non_string_metric(self):
        with pytest.raises(QueryError):
            Query(None, 0, 100)

    def test_unknown_aggregator(self):
        with pytest.raises(QueryError):
            Query("m", 0, 100, aggregator="nope")

    def test_malformed_downsample(self):
        with pytest.raises(QueryError):
            Query("m", 0, 100, downsample="5x-avg")

    def test_end_before_start(self):
        with pytest.raises(QueryError):
            Query("m", 100, 50)

    def test_valid_query_still_constructs(self):
        Query("m", 0, 100, aggregator="p95", downsample="5m-avg-linear")


class TestExpressions:
    @pytest.fixture()
    def db(self):
        db = TSDB()
        for i in range(10):
            db.put("co2", i * 60, 400.0 + i, {"node": "a"})
            db.put("co2", i * 60, 500.0 + i, {"node": "b"})
        return db

    def test_difference(self, db):
        e = expr(
            "a - b",
            a=Query("co2", 0, 600, tags={"node": "a"}),
            b=Query("co2", 0, 600, tags={"node": "b"}),
        )
        res = db.run_many([e])[0]
        assert np.allclose(res.single().values, -100.0)
        assert res.single().metric == "a - b"

    def test_constants_and_precedence(self, db):
        e = expr("2 * a + 1", a=Query("co2", 0, 0, tags={"node": "a"}))
        res = db.run_many([e])[0]
        assert res.single().values.tolist() == [801.0]

    def test_grouped_broadcast(self, db):
        """Per-node CO2 minus the all-node baseline: the grouped operand
        sets the labels, the ungrouped one broadcasts."""
        e = expr(
            "node - baseline",
            node=Query("co2", 0, 600, group_by=("node",)),
            baseline=Query("co2", 0, 600),
        )
        res = db.run_many([e])[0]
        by_node = {s.group_tags["node"]: s for s in res}
        assert set(by_node) == {"a", "b"}
        assert np.allclose(by_node["a"].values, -50.0)
        assert np.allclose(by_node["b"].values, 50.0)

    def test_missing_instants_are_nan(self, db):
        db.put("co2", 2_000, 1.0, {"node": "a"})  # only node a has t=2000
        e = expr(
            "a - b",
            a=Query("co2", 0, 2_000, tags={"node": "a"}),
            b=Query("co2", 0, 2_000, tags={"node": "b"}),
        )
        res = db.run_many([e])[0].single()
        assert np.isnan(res.values[-1])

    def test_mismatched_group_labels_rejected(self, db):
        db.put("co2", 0, 1.0, {"node": "c"})
        e = expr(
            "a - b",
            a=Query("co2", 0, 600, group_by=("node",)),
            b=Query("co2", 0, 600, tags={"node": "a|b"}, group_by=("node",)),
        )
        with pytest.raises(QueryError):
            db.run_many([e])

    def test_operand_sharing_with_sibling_panels(self, db):
        """An expression operand equal to a sibling query executes once."""
        q = Query("co2", 0, 600, tags={"node": "a"})
        e = expr(
            "a * 1",
            a=Query("co2", 0, 600, tags={"node": "a"}),
        )
        qres, eres = db.run_many([q, e])
        assert np.array_equal(qres.single().values, eres.single().values)

    def test_unbound_name_rejected(self):
        with pytest.raises(QueryError):
            expr("a - b", a=Query("m", 0, 1))

    def test_unused_operand_rejected(self):
        with pytest.raises(QueryError):
            expr("a", a=Query("m", 0, 1), b=Query("m", 0, 1))

    def test_unsafe_formulas_rejected(self):
        for bad in ("__import__('os')", "a.x", "a[0]", "f(a)", "a if a else a",
                    "lambda: 1", "a == a"):
            with pytest.raises(QueryError):
                ExprQuery(bad, (("a", Query("m", 0, 1)),))

    def test_builders_as_operands(self, db):
        e = expr(
            "hi - lo",
            hi=select("co2").range(0, 600).aggregate("max"),
            lo=select("co2").range(0, 600).aggregate("min"),
        )
        res = db.run_many([e])[0].single()
        assert np.allclose(res.values, 100.0)

    def test_sharded_expr_identical_to_single(self, db):
        sharded = ShardedTSDB(4)
        for key, sl in db.iter_series():
            sharded.put_series(key.metric, sl.timestamps, sl.values,
                               key.tag_dict())
        e = expr(
            "node - baseline",
            node=Query("co2", 0, 600, group_by=("node",)),
            baseline=Query("co2", 0, 600),
        )
        a = db.run_many([e])[0]
        b = sharded.run_many([e])[0]
        assert a.scanned_points == b.scanned_points
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.timestamps, sb.timestamps)
            assert np.array_equal(sa.values, sb.values, equal_nan=True)


class TestScanPlan:
    def test_covering_subslice_equals_direct_scan(self):
        rng = np.random.default_rng(7)
        db = TSDB()
        ts = np.sort(rng.choice(100_000, size=5_000, replace=False))
        db.put_series("m", ts, rng.normal(size=ts.shape[0]))
        (key,) = db.series_for_metric("m")
        plan = ScanPlan()
        windows = [(0, 100_000), (10_000, 20_000), (55_555, 55_556),
                   (99_000, 100_000), (100_001, 200_000)]
        for lo, hi in windows:
            plan.need(key, lo, hi)
        plan.resolve(lambda k, lo, hi: db._stores[k].scan(lo, hi))
        assert plan.touched == 1
        for lo, hi in windows:
            got = plan.slice_for(key, lo, hi)
            want = db._stores[key].scan(lo, hi)
            assert np.array_equal(got.timestamps, want.timestamps)
            assert np.array_equal(got.values, want.values)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_shards=st.sampled_from(SHARD_COUNTS),
    agg=st.sampled_from(("avg", "sum", "min", "max", "count", "p90", "dev")),
    downsample=st.sampled_from((None, "5m-avg", "1h-max-nan", "30m-sum-zero")),
    rate=st.booleans(),
    group_by=st.sampled_from(((), ("node",), ("city", "node"))),
)
@example(
    seed=0,
    n_shards=7,
    agg='count',
    downsample=None,
    rate=True,
    group_by=('node',),
).via('discovered failure')
def test_property_pushdown_equivalence(seed, n_shards, agg, downsample, rate,
                                       group_by):
    """Randomized workloads: batched sharded execution == seed plan."""
    rows = random_rows(seed, n=400)
    single, sharded = TSDB(), ShardedTSDB(n_shards)
    for metric, ts, value, tags in rows:
        single.put(metric, ts, value, tags)
        sharded.put(metric, ts, value, tags)
    q = Query("air.co2.ppm", 0, 300_000, aggregator=agg,
              downsample=downsample, rate=rate, group_by=group_by)
    ref = seed_run(single, q)
    for res in (sharded.run_many([q], parallel=True)[0],
                sharded.run_many([q], parallel=False)[0],
                single.run_many([q])[0]):
        assert_results_identical(res, ref)
