"""Series-catalog tests: postings correctness, guard-rails, rebuild.

The catalog's one load-bearing promise is **equivalence**: for any
store state and any tag filter, ``_match`` answered from the inverted
postings index is byte-identical to the brute-force scan it replaced —
``sorted(k for k in all series of the metric if k.matches(tags))``.
The hypothesis property here drives both single and sharded stores
through random interleavings of ingest, retention, targeted deletes,
and full persistence round-trips, checking equivalence after every
step.  Around it: unit tests for the index bookkeeping (idempotence,
empty-bucket pruning), the cardinality guard-rails (atomic rejection,
single-vs-sharded consistency, re-admission after retention), the
retention/unindex contract, deterministic ordering, and catalog
rebuild on every restore path.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb import (
    CardinalityLimitError,
    RetentionPolicy,
    PerShardRetention,
    SeriesCatalog,
    SeriesKey,
    ShardedTSDB,
    TSDB,
    dumps,
    load,
)


def _key(metric, **tags):
    return SeriesKey.make(metric, tags)


def _brute_match(store, metric, tags):
    """The pre-catalog reference: full scan + ``key.matches``."""
    return sorted(
        (k for k in store.series_for_metric(metric) if k.matches(tags)),
        key=str,
    )


# ---------------------------------------------------------------------------
# SeriesCatalog unit behaviour
# ---------------------------------------------------------------------------


class TestSeriesCatalog:
    def test_add_discard_round_trip_leaves_nothing(self):
        cat = SeriesCatalog()
        k = _key("m.a", node="n1", city="trondheim")
        cat.add(k)
        assert k in cat and len(cat) == 1
        assert cat.metrics() == ["m.a"]
        assert cat.tag_keys("m.a") == ["city", "node"]
        assert cat.tag_values("m.a", "node") == ["n1"]
        cat.discard(k)
        assert k not in cat and len(cat) == 0
        assert cat.metrics() == []
        assert cat.tag_keys("m.a") == []
        assert cat.tag_values("m.a", "node") == []
        assert cat.cardinality("m.a") == 0

    def test_add_is_idempotent(self):
        cat = SeriesCatalog()
        k = _key("m.a", node="n1")
        gen_after_first = (cat.add(k), cat.generation)[1]
        cat.add(k)
        assert len(cat) == 1
        assert cat.generation == gen_after_first  # no-op does not bump

    def test_discard_missing_is_noop(self):
        cat = SeriesCatalog()
        gen = cat.generation
        cat.discard(_key("m.a", node="n1"))
        assert cat.generation == gen

    def test_partial_value_overlap_prunes_only_empty_buckets(self):
        cat = SeriesCatalog()
        a = _key("m.a", node="n1", site="s1")
        b = _key("m.a", node="n1", site="s2")
        cat.add(a)
        cat.add(b)
        cat.discard(a)
        assert cat.tag_values("m.a", "node") == ["n1"]
        assert cat.tag_values("m.a", "site") == ["s2"]

    def test_tag_values_validates_key_name(self):
        cat = SeriesCatalog()
        with pytest.raises(ValueError):
            cat.tag_values("m.a", "bad|key")

    def test_match_wildcard_alternation_exact(self):
        cat = SeriesCatalog()
        keys = [
            _key("m.a", node=f"n{i}", city=c)
            for i in range(4)
            for c in ("x", "y")
        ]
        for k in keys:
            cat.add(k)
        assert cat.match("m.a", {"node": "*"}) == sorted(keys, key=str)
        assert cat.match("m.a", {"node": "n1|n3", "city": "x"}) == sorted(
            (k for k in keys if k.matches({"node": "n1|n3", "city": "x"})),
            key=str,
        )
        assert cat.match("m.a", {"node": "n9"}) == []
        assert cat.match("m.a", {"absent": "*"}) == []
        assert cat.match("no.such.metric", {}) == []


# ---------------------------------------------------------------------------
# Equivalence property: postings == brute force, through everything
# ---------------------------------------------------------------------------

_METRICS = ("air.co2.ppm", "air.pm10.ugm3")
_NODES = tuple(f"n{i}" for i in range(5))
_CITIES = ("trondheim", "vejle")

_puts = st.tuples(
    st.sampled_from(_METRICS),
    st.sampled_from(_NODES),
    st.sampled_from(_CITIES),
    st.integers(min_value=0, max_value=9),
).map(lambda t: ("put",) + t)
_del_before = st.integers(min_value=0, max_value=10).map(
    lambda c: ("delete_before", c)
)
_del_series = st.tuples(
    st.sampled_from(_METRICS),
    st.sampled_from(_NODES),
    st.sampled_from(_CITIES),
    st.integers(min_value=0, max_value=10),
).map(lambda t: ("delete_series",) + t)
_roundtrip = st.sampled_from(["text", "binary"]).map(
    lambda f: ("roundtrip", f)
)

_FILTERS = (
    {},
    {"node": "*"},
    {"node": "n1"},
    {"node": "n0|n3"},
    {"node": "n1|n2|n4", "city": "trondheim"},
    {"city": "*", "node": "n2"},
    {"city": "trondheim|vejle"},
    {"node": "n9"},
    {"absent": "*"},
)


def _fresh(shards: int):
    return TSDB() if shards == 0 else ShardedTSDB(shards)


def _check_equivalence(store):
    for metric in _METRICS + ("no.such.metric",):
        for tags in _FILTERS:
            assert store._match(metric, tags) == _brute_match(
                store, metric, tags
            ), f"divergence on {metric!r} {tags!r}"


@given(
    shards=st.sampled_from([0, 1, 2, 4, 7]),
    ops=st.lists(
        st.one_of(_puts, _del_before, _del_series, _roundtrip),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=60, deadline=None)
def test_match_equals_brute_force_scan(shards, ops):
    store = _fresh(shards)
    for op in ops:
        if op[0] == "put":
            _, metric, node, city, ts = op
            store.put(metric, ts, 1.0, {"node": node, "city": city})
        elif op[0] == "delete_before":
            store.delete_before(op[1])
        elif op[0] == "delete_series":
            _, metric, node, city, cutoff = op
            store.delete_series_before(
                _key(metric, node=node, city=city), cutoff
            )
        else:  # roundtrip: the restored store must rebuild the catalog
            data = dumps(store, format=op[1])
            buf = io.BytesIO(data) if op[1] == "binary" else io.StringIO(data)
            store = load(buf, into=_fresh(shards))
        _check_equivalence(store)
    # The store kinds agree with each other because each agrees with
    # the same brute-force reference; pin the sorted contract directly.
    for metric in _METRICS:
        for tags in _FILTERS:
            got = store._match(metric, tags)
            assert got == sorted(got, key=str)


# ---------------------------------------------------------------------------
# Cardinality guard-rails
# ---------------------------------------------------------------------------


class TestCardinalityGuard:
    @pytest.mark.parametrize("shards", [0, 1, 3, 4])
    def test_limit_is_store_wide(self, shards):
        store = (
            TSDB(max_tag_values=3)
            if shards == 0
            else ShardedTSDB(shards, max_tag_values=3)
        )
        for i in range(3):
            store.put("m.a", 1, 1.0, {"node": f"n{i}"})
        with pytest.raises(CardinalityLimitError) as exc:
            store.put("m.a", 1, 1.0, {"node": "n3"})
        assert "3 distinct-value limit" in str(exc.value)
        # Existing values stay writable; other metrics are unaffected.
        store.put("m.a", 2, 2.0, {"node": "n0"})
        store.put("m.b", 1, 1.0, {"node": "n3"})
        assert store.suggest_tag_values("m.a", "node") == ["n0", "n1", "n2"]

    @pytest.mark.parametrize("shards", [0, 4])
    def test_rejection_is_atomic(self, shards):
        store = (
            TSDB(max_tag_values=1)
            if shards == 0
            else ShardedTSDB(shards, max_tag_values=1)
        )
        store.put("m.a", 1, 1.0, {"node": "n0"})
        before = store.exact_point_count()
        with pytest.raises(CardinalityLimitError):
            store.put("m.a", 5, 9.0, {"node": "n1"})
        assert store.exact_point_count() == before
        assert store.series_count == 1
        assert store.suggest_tag_values("m.a", "node") == ["n0"]
        assert _key("m.a", node="n1") not in store.catalog

    def test_batch_keeps_rows_admitted_before_the_trip(self):
        store = TSDB(max_tag_values=2)
        from repro.tsdb import BatchBuilder

        builder = BatchBuilder()
        for i in range(4):
            builder.add("m.a", i, float(i), {"node": f"n{i}"})
        with pytest.raises(CardinalityLimitError):
            store.put_batch(builder.build())
        # Same at-least-once boundary as WAL replay: earlier series stay.
        assert store.suggest_tag_values("m.a", "node") == ["n0", "n1"]

    @pytest.mark.parametrize("shards", [0, 4])
    def test_retention_frees_values_for_readmission(self, shards):
        store = (
            TSDB(max_tag_values=2)
            if shards == 0
            else ShardedTSDB(shards, max_tag_values=2)
        )
        store.put("m.a", 1, 1.0, {"node": "old"})
        store.put("m.a", 100, 1.0, {"node": "live"})
        with pytest.raises(CardinalityLimitError):
            store.put("m.a", 100, 1.0, {"node": "new"})
        store.delete_before(50)  # empties and unindexes node=old
        store.put("m.a", 100, 1.0, {"node": "new"})
        assert store.suggest_tag_values("m.a", "node") == ["live", "new"]

    def test_unlimited_by_default(self):
        store = TSDB()
        for i in range(100):
            store.put("m.a", 1, 1.0, {"node": f"n{i}"})
        assert store.cardinality("m.a") == 100


# ---------------------------------------------------------------------------
# Retention unindexes dead series (satellite: delete paths -> _unindex)
# ---------------------------------------------------------------------------


class TestRetentionUnindex:
    @pytest.mark.parametrize("shards", [0, 4])
    def test_delete_before_removes_dead_series_from_catalog(self, shards):
        store = _fresh(shards)
        store.put("m.dead", 1, 1.0, {"node": "gone"})
        store.put("m.live", 100, 1.0, {"node": "stays"})
        store.delete_before(50)
        assert store.metrics() == ["m.live"]
        assert store.tag_values("m.dead", "node") == []
        assert store.cardinality("m.dead") == 0
        assert store.tag_values("m.live", "node") == ["stays"]

    def test_delete_series_before_unindexes_when_emptied(self):
        store = TSDB()
        k = store.put("m.a", 1, 1.0, {"node": "n0"})
        store.put("m.a", 1, 1.0, {"node": "n1"})
        store.delete_series_before(k, 10)
        assert store.tag_values("m.a", "node") == ["n1"]
        assert store._match("m.a", {"node": "*"}) == [
            _key("m.a", node="n1")
        ]

    def test_retention_policy_prunes_catalog(self):
        store = TSDB()
        store.put("m.a", 0, 1.0, {"node": "old"})
        store.put("m.a", 10_000, 1.0, {"node": "young"})
        RetentionPolicy(raw_max_age=100).enforce(store, now=10_050)
        assert store.tag_values("m.a", "node") == ["young"]

    def test_per_shard_retention_prunes_catalog(self):
        store = ShardedTSDB(3)
        for i in range(9):
            store.put("m.a", 0, 1.0, {"node": f"old{i}"})
            store.put("m.a", 10_000, 1.0, {"node": f"young{i}"})
        PerShardRetention(
            [RetentionPolicy(raw_max_age=100)] * 3
        ).enforce(store, now=10_050)
        assert store.tag_values("m.a", "node") == sorted(
            f"young{i}" for i in range(9)
        )
        assert store.cardinality("m.a", {"node": "*"}) == 9


# ---------------------------------------------------------------------------
# Restore paths rebuild the catalog
# ---------------------------------------------------------------------------


def _seed(store):
    for i in range(4):
        store.put("air.co2.ppm", i * 10, 400.0 + i,
                  {"node": f"n{i % 2}", "city": "trondheim"})
    store.put("weather.temperature.c", 5, 3.0, {"city": "vejle"})
    store.delete_series_before(
        store.put("m.doomed", 1, 1.0, {"node": "gone"}), 10
    )
    return store


def _catalog_view(store):
    return {
        m: {
            k: store.tag_values(m, k) for k in store.tag_keys(m)
        }
        for m in store.metrics()
    }


class TestCatalogRebuild:
    @pytest.mark.parametrize("fmt", ["text", "binary"])
    @pytest.mark.parametrize("shards", [0, 4])
    def test_dumps_load_rebuilds_catalog(self, fmt, shards):
        store = _seed(_fresh(shards))
        data = dumps(store, format=fmt)
        buf = io.BytesIO(data) if fmt == "binary" else io.StringIO(data)
        restored = load(buf, into=_fresh(shards))
        assert _catalog_view(restored) == _catalog_view(store)
        assert "m.doomed" not in restored.metrics()
        for metric in store.metrics():
            assert restored._match(metric, {"node": "*"}) == store._match(
                metric, {"node": "*"}
            )

    @pytest.mark.parametrize("fmt", ["text", "binary"])
    def test_restore_from_dir_rebuilds_catalog(self, fmt, tmp_path):
        store = _seed(ShardedTSDB(3))
        store.snapshot_to_dir(tmp_path, format=fmt)
        restored = ShardedTSDB.restore_from_dir(tmp_path)
        assert _catalog_view(restored) == _catalog_view(store)
        assert restored.cardinality("air.co2.ppm") == store.cardinality(
            "air.co2.ppm"
        )


# ---------------------------------------------------------------------------
# Deterministic ordering (satellite: alternation + pinned sort)
# ---------------------------------------------------------------------------


class TestOrdering:
    def test_single_and_sharded_match_identically(self):
        single, sharded = _seed(TSDB()), _seed(ShardedTSDB(7))
        for tags in ({}, {"node": "*"}, {"node": "n0|n1"}, {"city": "*"}):
            assert single._match("air.co2.ppm", tags) == sharded._match(
                "air.co2.ppm", tags
            )

    def test_alternation_narrows_through_the_index(self):
        store = TSDB()
        for i in range(6):
            store.put("m.a", 1, 1.0, {"node": f"n{i}"})
        got = store._match("m.a", {"node": "n1|n4"})
        assert got == [_key("m.a", node="n1"), _key("m.a", node="n4")]
