"""Binary columnar segment persistence: codec, equivalence, recovery.

Pins the new durability fast path to the text line protocol:

- the batch/marker codec round-trips bit-exactly (hypothesis: arbitrary
  metrics, tags, out-of-order timestamps, duplicate keys, NaN values);
- a store restored from a binary WAL/snapshot is byte-identical (via
  ``dumps``) to one restored from the equivalent text log, for single
  and sharded stores and with interleaved retention markers;
- per-block CRCs turn corruption into per-block loss under
  ``strict=False`` and loud failure under ``strict=True``;
- the dataport WAL hook and the CLI ``convert-log`` migration replay
  losslessly.
"""

import io
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.dataport import BatchingTsdbWriter
from repro.tsdb import (
    BatchBuilder,
    DataPoint,
    DeleteBefore,
    DeleteSeriesBefore,
    LogWriter,
    PointBatch,
    Query,
    SegmentCorruption,
    SegmentWriter,
    ShardedTSDB,
    TSDB,
    convert_log,
    detect_format,
    dumps,
    iter_batches,
    iter_segments,
    load,
    parse_series_key,
    segment_point_count,
    snapshot,
)
from repro.tsdb.segments import SEGMENT_MAGIC, decode_batch, encode_batch


def make_point(metric="m", ts=100, val=1.5, tags=None):
    return DataPoint.make(metric, ts, val, tags or {"node": "a"})


def mixed_batch() -> PointBatch:
    """Two series, interleaved rows, out-of-order + duplicate timestamps."""
    b = BatchBuilder()
    for ts, val in ((30, 1.0), (10, 2.0), (10, 3.0), (20, float("nan"))):
        b.add("air.co2.ppm", ts, val, {"node": "n1", "city": "trondheim"})
        b.add("plain", ts + 1, -val)
    return b.build()


def assert_batches_equal(a: PointBatch, b: PointBatch) -> None:
    """Bit-exact equality: keys, dictionary indices, columns (NaN-safe)."""
    assert a.keys == b.keys
    assert np.array_equal(a.key_idx, b.key_idx)
    assert np.array_equal(a.timestamps, b.timestamps)
    assert a.values.tobytes() == b.values.tobytes()


class TestCodec:
    def test_batch_round_trip(self):
        batch = mixed_batch()
        assert_batches_equal(decode_batch(encode_batch(batch)), batch)

    def test_empty_batch_round_trip(self):
        assert len(decode_batch(encode_batch(PointBatch.empty()))) == 0

    def test_parse_series_key_round_trip(self):
        for key in mixed_batch().keys:
            assert parse_series_key(str(key)) == key

    def test_parse_series_key_rejects_garbage(self):
        for bad in ("m{node", "m{node:a}", "m{=a}", "{a=b}", "bad name"):
            with pytest.raises(ValueError):
                parse_series_key(bad)

    def test_decode_rejects_short_columns(self):
        payload = encode_batch(mixed_batch())
        with pytest.raises(ValueError, match="column bytes"):
            decode_batch(payload[:-8])


class TestSegmentWriterAndReader:
    def test_wal_round_trip(self, tmp_path):
        path = tmp_path / "wal.seg"
        batch = mixed_batch()
        with SegmentWriter(path) as w:
            w.comment("header")
            w.write_batch(batch)
        assert w.written == len(batch)
        items = list(iter_segments(path))
        assert len(items) == 1  # comments are skipped
        assert_batches_equal(items[0], batch)
        assert segment_point_count(path) == len(batch)

    def test_append_mode(self, tmp_path):
        path = tmp_path / "wal.seg"
        with SegmentWriter(path) as w:
            w.write_batch(mixed_batch())
        with SegmentWriter(path) as w:
            w.write_batch(mixed_batch())
        assert sum(len(b) for b in iter_segments(path)) == 2 * len(mixed_batch())

    def test_refuses_to_append_to_text_log(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\n")
        with pytest.raises(SegmentCorruption, match="not a segment file"):
            SegmentWriter(path)

    def test_per_point_writes_buffer_into_one_block(self, tmp_path):
        path = tmp_path / "wal.seg"
        with SegmentWriter(path) as w:
            for i in range(10):
                w.write(make_point(ts=i, val=float(i)))
        items = list(iter_segments(path))
        assert len(items) == 1 and len(items[0]) == 10

    def test_marker_blocks_interleave_in_order(self, tmp_path):
        path = tmp_path / "wal.seg"
        with SegmentWriter(path) as w:
            w.write(make_point(ts=1))
            w.delete_before(5, exclude_suffix=".rollup")
            w.write(make_point(ts=9))
        items = list(iter_segments(path))
        assert [type(i).__name__ for i in items] == [
            "PointBatch", "DeleteBefore", "PointBatch",
        ]
        assert items[1] == DeleteBefore(5, ".rollup")
        assert w.written == 2  # markers are not points

    def test_reader_requires_magic(self, tmp_path):
        path = tmp_path / "not-a-segment.seg"
        path.write_text("m 1 2.0\n")
        with pytest.raises(SegmentCorruption, match="magic"):
            list(iter_segments(path))
        # ... even in lenient mode: a wrong format is not a damaged file.
        with pytest.raises(SegmentCorruption, match="magic"):
            list(iter_segments(path, strict=False))


class TestCorruptionRecovery:
    def three_block_file(self, tmp_path):
        path = tmp_path / "wal.seg"
        with SegmentWriter(path) as w:
            for base in (0, 100, 200):
                w.write_many([make_point(ts=base + i) for i in range(5)])
        return path

    def corrupt_middle_block(self, path):
        raw = bytearray(path.read_bytes())
        # Blocks are identical size; flip a payload byte in the middle one.
        block = (len(raw) - len(SEGMENT_MAGIC)) // 3
        raw[len(SEGMENT_MAGIC) + block + 20] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_corrupt_block_raises_strict(self, tmp_path):
        path = self.three_block_file(tmp_path)
        self.corrupt_middle_block(path)
        with pytest.raises(SegmentCorruption, match="checksum"):
            list(iter_segments(path))

    def test_corrupt_block_skipped_lenient(self, tmp_path):
        """The length prefix bounds the damage: one bad CRC loses one
        block, and the blocks after it still replay."""
        path = self.three_block_file(tmp_path)
        self.corrupt_middle_block(path)
        items = list(iter_segments(path, strict=False))
        assert [b.timestamps.min() for b in items] == [0, 200]
        db = load(path, strict=False)
        assert db.exact_point_count() == 10

    def test_truncated_tail_recovery(self, tmp_path):
        """Unclean shutdown: a half-written final block is dropped, the
        clean prefix replays — mirroring the text protocol's contract."""
        path = self.three_block_file(tmp_path)
        raw = path.read_bytes()
        for cut in (1, 7, 15):  # mid-payload, mid-header
            path.write_bytes(raw[:-cut])
            with pytest.raises(SegmentCorruption, match="truncated"):
                list(iter_segments(path))
            db = load(path, strict=False)
            assert db.exact_point_count() == 10

    def test_corrupted_length_field_keeps_clean_prefix(self, tmp_path):
        """Header damage is CRC-detected; a bogus length can't be
        trusted for framing, so lenient recovery keeps every block
        before the damage (like a truncated tail) — never garbage."""
        path = self.three_block_file(tmp_path)
        raw = bytearray(path.read_bytes())
        block = (len(raw) - len(SEGMENT_MAGIC)) // 3
        raw[len(SEGMENT_MAGIC) + block + 2] ^= 0x40  # length field, block 2
        path.write_bytes(bytes(raw))
        with pytest.raises(SegmentCorruption):
            list(iter_segments(path))
        recovered = load(path, strict=False)
        assert recovered.exact_point_count() == 5  # block 1 survives
        assert sorted(p.timestamp for p in recovered.iter_points()) == list(range(5))

    def test_append_after_torn_tail_truncates_and_stays_readable(self, tmp_path):
        """Reopening a WAL whose last block was torn by a crash must
        drop the torn tail before appending — the format has no resync
        marker, so blocks written after torn bytes would otherwise be
        swallowed by the partial block's length prefix."""
        path = self.three_block_file(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # torn mid-payload
        with SegmentWriter(path) as w:  # restart: append mode
            w.write_many([make_point(ts=500 + i) for i in range(5)])
        db = load(path)  # strict: the file is clean again
        assert db.exact_point_count() == 15  # 2 clean blocks + 5 new
        assert sorted(p.timestamp for p in db.iter_points())[-1] == 504

    def test_corrupt_magic_recovers_without_decode_crash(self, tmp_path):
        """A damaged magic mis-detects the file as text; the recovery
        contract must still hold: LogCorruption (handled corruption),
        never a raw UnicodeDecodeError, and lenient load survives."""
        path = self.three_block_file(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert detect_format(path) == "text"
        from repro.tsdb import LogCorruption

        with pytest.raises(LogCorruption):
            load(path)
        load(path, strict=False)  # recovers (no crash); garbage skipped
        # convert-log --lenient ends with its friendly error path too.
        assert (
            cli_main(
                ["convert-log", "--lenient", str(path), str(tmp_path / "o.seg")]
            )
            == 0
        )

    def test_corrupt_magic_binary_handle_recovers_too(self):
        """The same corrupt-magic recovery contract holds for a
        binary-mode *handle*, not just a path: bytes lines must not hit
        the str line parser and crash with TypeError."""
        db = TSDB()
        db.put("m", 1, 2.0)
        blob = bytearray(dumps(db, format="binary"))
        blob[0] ^= 0xFF
        from repro.tsdb import LogCorruption

        with pytest.raises(LogCorruption):
            load(io.BytesIO(bytes(blob)))
        recovered = load(io.BytesIO(bytes(blob)), strict=False)
        assert recovered.point_count == 0  # nothing parseable, no crash

    def test_wal_write_failure_rolls_back_torn_frame(self, tmp_path):
        """A write that dies mid-frame (disk full) must not leave torn
        bytes: a retried append afterwards stays fully replayable."""
        path = tmp_path / "wal.seg"
        w = SegmentWriter(path)
        w.write_batch(mixed_batch())

        real_write = w._fh.write

        def failing_write(data):
            real_write(data[: len(data) // 2])  # torn: half the frame lands
            raise OSError(28, "No space left on device")

        w._fh.write = failing_write
        with pytest.raises(OSError):
            w.write_batch(mixed_batch())
        # The torn frame was rolled back; appends after the failure replay.
        w.write_batch(mixed_batch())
        w.close()
        items = list(iter_segments(path))  # strict: file is clean
        assert sum(len(b) for b in items) == 2 * len(mixed_batch())

    def test_empty_file_is_not_a_segment(self, tmp_path):
        path = tmp_path / "empty.seg"
        path.touch()
        with pytest.raises(SegmentCorruption):
            list(iter_segments(path))
        assert detect_format(path) == "text"  # empty text log loads empty
        assert load(path).point_count == 0


def reference_ops(db):
    """A workload with out-of-order rows, overwrites, and interleaved
    retention — applied identically to live stores and WALs."""
    for i in range(60):
        db.put(f"m.{i % 4}", (i * 7) % 50, float(i), {"node": f"n{i % 3}"})
    db.delete_before(20)
    for i in range(20):
        db.put("m.0", 5 + i, -float(i), {"node": "n9"})
    db.delete_before(8, exclude_suffix=".rollup")


def write_reference_wal(writer) -> None:
    """The same workload as :func:`reference_ops`, as a WAL stream."""
    for i in range(60):
        writer.write(
            DataPoint.make(f"m.{i % 4}", (i * 7) % 50, float(i), {"node": f"n{i % 3}"})
        )
    writer.delete_before(20)
    for i in range(20):
        writer.write(DataPoint.make("m.0", 5 + i, -float(i), {"node": "n9"}))
    writer.delete_before(8, exclude_suffix=".rollup")


class TestFormatEquivalence:
    def test_wal_replay_matches_text_and_live(self, tmp_path):
        live = TSDB()
        reference_ops(live)
        with LogWriter(tmp_path / "wal.log") as w:
            write_reference_wal(w)
        with SegmentWriter(tmp_path / "wal.seg") as w:
            write_reference_wal(w)
        from_text = load(tmp_path / "wal.log")
        from_binary = load(tmp_path / "wal.seg")
        assert dumps(from_binary) == dumps(from_text) == dumps(live)

    @pytest.mark.parametrize("shards", [1, 3, 7])
    def test_replay_into_sharded_store(self, tmp_path, shards):
        with SegmentWriter(tmp_path / "wal.seg") as w:
            write_reference_wal(w)
        single = load(tmp_path / "wal.seg")
        sharded = load(tmp_path / "wal.seg", into=ShardedTSDB(shards))
        assert dumps(sharded) == dumps(single)
        assert sharded.metrics() == single.metrics()

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_snapshot_dir_round_trip(self, tmp_path, shards):
        db = ShardedTSDB(shards)
        reference_ops(db)
        db.snapshot_to_dir(tmp_path / "text", format="text")
        db.snapshot_to_dir(tmp_path / "bin", format="binary")
        assert all(p.suffix == ".seg" for p in (tmp_path / "bin").iterdir())
        from_text = ShardedTSDB.restore_from_dir(tmp_path / "text")
        from_bin = ShardedTSDB.restore_from_dir(tmp_path / "bin")
        assert dumps(from_bin) == dumps(from_text) == dumps(db)
        # iter_points order is canonical and identical across formats.
        assert [str(p.key) for p in from_bin.iter_points()] == [
            str(p.key) for p in from_text.iter_points()
        ]

    def test_mixed_format_snapshot_restores(self, tmp_path):
        """A partially migrated snapshot dir (some shards converted to
        .seg, some still .log) restores by per-file auto-detection."""
        db = ShardedTSDB(2)
        reference_ops(db)
        db.snapshot_to_dir(tmp_path, format="text")
        convert_log(
            tmp_path / "shard-0-of-2.log", tmp_path / "shard-0-of-2.seg"
        )
        (tmp_path / "shard-0-of-2.log").unlink()
        assert dumps(ShardedTSDB.restore_from_dir(tmp_path)) == dumps(db)

    def test_failed_resnapshot_preserves_prior_snapshot(self, tmp_path, monkeypatch):
        """A mid-snapshot failure (disk full on one shard) must leave
        the previous snapshot restorable: no good files deleted, no
        duplicate twins left behind."""
        from repro.tsdb import persistence as pmod

        db = ShardedTSDB(2)
        reference_ops(db)
        db.snapshot_to_dir(tmp_path, format="text")
        real_snapshot = pmod.snapshot

        def failing_snapshot(store, path, **kw):
            if "shard-1-" in str(path):
                raise OSError(28, "No space left on device")
            return real_snapshot(store, path, **kw)

        monkeypatch.setattr(pmod, "snapshot", failing_snapshot)
        with pytest.raises(OSError):
            db.snapshot_to_dir(tmp_path, format="binary")
        monkeypatch.undo()
        # The old text snapshot is whole and restorable; no .tmp litter.
        assert {p.suffix for p in tmp_path.iterdir()} == {".log"}
        assert dumps(ShardedTSDB.restore_from_dir(tmp_path)) == dumps(db)

    def test_resnapshot_in_other_format_replaces_stale_twins(self, tmp_path):
        """Re-snapshotting a directory in the other format must not
        leave the old format's files behind as duplicates."""
        db = ShardedTSDB(2)
        reference_ops(db)
        db.snapshot_to_dir(tmp_path, format="text")
        db.snapshot_to_dir(tmp_path, format="binary")
        assert {p.suffix for p in tmp_path.iterdir()} == {".seg"}
        assert dumps(ShardedTSDB.restore_from_dir(tmp_path)) == dumps(db)

    def test_resnapshot_with_other_shard_count_replaces_stale_files(self, tmp_path):
        """Re-snapshotting with a different shard count removes the old
        count's files, keeping the directory single-snapshot restorable."""
        big = ShardedTSDB(4)
        reference_ops(big)
        big.snapshot_to_dir(tmp_path, format="binary")
        small = ShardedTSDB(2)
        reference_ops(small)
        small.snapshot_to_dir(tmp_path, format="binary")
        assert {p.name for p in tmp_path.iterdir()} == {
            "shard-0-of-2.seg", "shard-1-of-2.seg",
        }
        assert dumps(ShardedTSDB.restore_from_dir(tmp_path)) == dumps(small)

    def test_duplicate_shard_files_fail_loudly(self, tmp_path):
        db = ShardedTSDB(2)
        reference_ops(db)
        db.snapshot_to_dir(tmp_path, format="text")
        convert_log(
            tmp_path / "shard-0-of-2.log", tmp_path / "shard-0-of-2.seg"
        )
        with pytest.raises(ValueError, match="duplicate"):
            ShardedTSDB.restore_from_dir(tmp_path)

    def test_snapshot_queries_match_across_formats(self, tmp_path):
        db = TSDB()
        reference_ops(db)
        snapshot(db, tmp_path / "s.log", format="text")
        snapshot(db, tmp_path / "s.seg", format="binary")
        q = Query("m.0", 0, 100, tags={"node": "*"}, downsample="10s-avg")
        a = load(tmp_path / "s.log").run(q).single()
        b = load(tmp_path / "s.seg").run(q).single()
        assert np.array_equal(a.timestamps, b.timestamps)
        assert a.values.tobytes() == b.values.tobytes()

    def test_dumps_binary_round_trip(self):
        db = TSDB()
        reference_ops(db)
        blob = dumps(db, format="binary")
        assert isinstance(blob, bytes) and blob.startswith(SEGMENT_MAGIC)
        assert dumps(load(io.BytesIO(blob))) == dumps(db)

    def test_iter_batches_text_chunks_at_markers(self, tmp_path):
        path = tmp_path / "wal.log"
        with LogWriter(path) as w:
            w.write(make_point(ts=1))
            w.delete_before(2)
            w.write(make_point(ts=3))
        items = list(iter_batches(path))
        kinds = [type(i).__name__ for i in items]
        assert kinds == ["PointBatch", "DeleteBefore", "PointBatch"]


class TestConvertLog:
    def build_text_log(self, path):
        with LogWriter(path) as w:
            write_reference_wal(w)

    def test_text_to_binary_and_back(self, tmp_path):
        self.build_text_log(tmp_path / "wal.log")
        convert_log(tmp_path / "wal.log", tmp_path / "wal.seg", format="binary")
        convert_log(tmp_path / "wal.seg", tmp_path / "back.log", format="text")
        ref = dumps(load(tmp_path / "wal.log"))
        assert dumps(load(tmp_path / "wal.seg")) == ref
        assert dumps(load(tmp_path / "back.log")) == ref

    def test_counts(self, tmp_path):
        self.build_text_log(tmp_path / "wal.log")
        points, markers = convert_log(tmp_path / "wal.log", tmp_path / "wal.seg")
        assert points == 80 and markers == 2

    def test_lenient_skips_damage(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\nGARBAGE\nm 3 4.0\n")
        from repro.tsdb import LogCorruption

        with pytest.raises(LogCorruption):
            convert_log(path, tmp_path / "wal.seg")
        points, _ = convert_log(path, tmp_path / "wal.seg", strict=False)
        assert points == 2

    def test_cli_subcommand(self, tmp_path, capsys):
        self.build_text_log(tmp_path / "wal.log")
        rc = cli_main(
            ["convert-log", str(tmp_path / "wal.log"), str(tmp_path / "wal.seg")]
        )
        assert rc == 0
        assert "80 points" in capsys.readouterr().out
        assert detect_format(tmp_path / "wal.seg") == "binary"
        assert dumps(load(tmp_path / "wal.seg")) == dumps(load(tmp_path / "wal.log"))

    def test_refuses_same_source_and_destination(self, tmp_path):
        """src == dst would truncate the source before reading it."""
        path = tmp_path / "wal.log"
        self.build_text_log(path)
        before = path.read_bytes()
        with pytest.raises(ValueError, match="same file"):
            convert_log(path, path, format="text")
        assert path.read_bytes() == before  # untouched
        with pytest.raises(SystemExit, match="same file"):
            cli_main(["convert-log", str(path), str(path), "--to", "text"])

    def test_missing_source_leaves_no_stub(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            convert_log(tmp_path / "nope.log", tmp_path / "out.seg")
        assert not (tmp_path / "out.seg").exists()

    def test_cli_corrupt_without_lenient_fails(self, tmp_path):
        (tmp_path / "wal.log").write_text("m 1 2.0\nGARBAGE\n")
        with pytest.raises(SystemExit, match="lenient"):
            cli_main(
                ["convert-log", str(tmp_path / "wal.log"), str(tmp_path / "o.seg")]
            )
        rc = cli_main(
            ["convert-log", "--lenient", str(tmp_path / "wal.log"),
             str(tmp_path / "o.seg")]
        )
        assert rc == 0


class TestDataportWalHook:
    def test_write_batch_flushes_to_disk(self, tmp_path):
        """Write-ahead means *on disk* before the store sees the batch:
        the block (and magic) must not sit in a userspace buffer."""
        w = SegmentWriter(tmp_path / "wal.seg")
        w.write_batch(mixed_batch())
        on_disk = segment_point_count(tmp_path / "wal.seg")  # before close
        assert on_disk == len(mixed_batch())
        w.close()

    def test_write_many_counts_only_its_own_points(self, tmp_path):
        with SegmentWriter(tmp_path / "wal.seg") as w:
            w.write(make_point(ts=1))
            assert w.write_many([make_point(ts=2)]) == 1  # matches LogWriter
        assert w.written == 2

    def test_flushes_append_to_wal_before_store(self, tmp_path):
        db = TSDB()
        with SegmentWriter(tmp_path / "wal.seg") as wal:
            writer = BatchingTsdbWriter(db, max_pending=16, wal=wal)
            for i in range(50):
                writer.add("air.co2.ppm", i, float(i), {"node": "n1"})
            writer.flush()
        assert writer.written == 50
        replayed = load(tmp_path / "wal.seg")
        assert dumps(replayed) == dumps(db)

    def test_failed_wal_write_keeps_batch_for_retry(self, tmp_path):
        """A WAL append failure (disk full) must not lose the buffered
        points: the builder retains them and a later flush retries."""

        class FailingOnceWal:
            def __init__(self):
                self.fail = True
                self.batches = []

            def write_batch(self, batch):
                if self.fail:
                    self.fail = False
                    raise OSError("no space left on device")
                self.batches.append(batch)

        db = TSDB()
        wal = FailingOnceWal()
        writer = BatchingTsdbWriter(db, max_pending=100, wal=wal)
        for i in range(10):
            writer.add("air.co2.ppm", i, float(i), {"node": "n1"})
        with pytest.raises(OSError):
            writer.flush()
        assert writer.pending == 10  # retained, not lost
        assert db.exact_point_count() == 0  # store untouched too
        assert writer.flush() == 10  # retry succeeds
        assert len(wal.batches) == 1 and db.exact_point_count() == 10

    def test_text_wal_also_accepted(self, tmp_path):
        db = TSDB()
        with LogWriter(tmp_path / "wal.log") as wal:
            writer = BatchingTsdbWriter(db, max_pending=16, wal=wal)
            for i in range(20):
                writer.add("air.co2.ppm", i, float(i), {"node": "n1"})
            writer.flush()
        assert dumps(load(tmp_path / "wal.log")) == dumps(db)


# -- hypothesis: codec + equivalence over arbitrary workloads -------------
names = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._\-/]{0,8}", fullmatch=True)
tag_maps = st.dictionaries(names, names, max_size=3)
point_rows = st.lists(
    st.tuples(
        names,
        st.integers(min_value=0, max_value=2**40),
        st.floats(allow_nan=True, allow_infinity=True, width=64),
        tag_maps,
    ),
    max_size=80,
)


class TestCodecProperties:
    @given(point_rows)
    @settings(max_examples=120, deadline=None)
    def test_batch_codec_round_trips_exactly(self, rows):
        """Arbitrary metrics/tags/timestamps — including out-of-order
        rows, duplicate series keys, NaN and infinite values — survive
        encode/decode bit-exactly, in row order."""
        builder = BatchBuilder()
        for metric, ts, val, tags in rows:
            builder.add(metric, ts, val, tags)
        batch = builder.build()
        assert_batches_equal(decode_batch(encode_batch(batch)), batch)

    @given(point_rows, st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=60, deadline=None)
    def test_wal_equivalence_with_marker(self, rows, cutoff):
        """Text and binary WALs carrying the same stream (with a
        retention marker in the middle) restore identical stores."""
        finite_rows = [
            (m, t, v if v == v and abs(v) != float("inf") else 0.5, tags)
            for m, t, v, tags in rows
        ]
        text_buf, bin_buf = io.StringIO(), io.BytesIO()
        tw, bw = LogWriter(text_buf), SegmentWriter(bin_buf)
        half = len(finite_rows) // 2
        for writers in (tw, bw):
            for m, t, v, tags in finite_rows[:half]:
                writers.write(DataPoint.make(m, t, v, tags))
            writers.delete_before(cutoff)
            for m, t, v, tags in finite_rows[half:]:
                writers.write(DataPoint.make(m, t, v, tags))
            writers.flush()
        text_buf.seek(0)
        bin_buf.seek(0)
        a = load(text_buf, format="text")
        b = load(bin_buf, format="binary")
        assert dumps(a) == dumps(b)

    @given(point_rows)
    @settings(max_examples=60, deadline=None)
    def test_binary_snapshot_restores_identical_state(self, rows):
        db = TSDB()
        builder = BatchBuilder()
        for metric, ts, val, tags in rows:
            v = val if val == val and abs(val) != float("inf") else -1.0
            builder.add(metric, ts, v, tags)
        db.put_batch(builder.build())
        blob = dumps(db, format="binary")
        assert dumps(load(io.BytesIO(blob))) == dumps(db)


class TestDeleteSeriesBeforeMarker:
    """The per-series retention marker (scoped retention's WAL footprint)
    round-trips both durability formats and replays its deletion."""

    def reference(self):
        db = TSDB()
        db.put("m", 10, 1.0, {"node": "a"})
        db.put("m", 20, 2.0, {"node": "a"})
        db.put("m", 10, 3.0, {"node": "b"})
        key = parse_series_key("m{node=a}")
        db.delete_series_before(key, 15)  # drops only m{node=a}@10
        return db, key

    def test_binary_round_trip(self, tmp_path):
        path = tmp_path / "wal.seg"
        _, key = self.reference()
        with SegmentWriter(path) as w:
            w.write(make_point(ts=1))
            w.delete_series_before(key, 15)
        items = list(iter_segments(path))
        assert items[1] == DeleteSeriesBefore(key, 15)

    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        _, key = self.reference()
        with LogWriter(path) as w:
            w.write(make_point(ts=1))
            w.delete_series_before(key, 15)
        items = list(iter_batches(path))
        assert items[1] == DeleteSeriesBefore(key, 15)

    @pytest.mark.parametrize("fmt,cls", [("text", LogWriter),
                                         ("binary", SegmentWriter)])
    def test_replay_applies_the_scoped_deletion(self, tmp_path, fmt, cls):
        live, key = self.reference()
        path = tmp_path / ("wal.log" if fmt == "text" else "wal.seg")
        with cls(path) as w:
            w.write(DataPoint.make("m", 10, 1.0, {"node": "a"}))
            w.write(DataPoint.make("m", 20, 2.0, {"node": "a"}))
            w.write(DataPoint.make("m", 10, 3.0, {"node": "b"}))
            w.delete_series_before(key, 15)
        assert dumps(load(path)) == dumps(live)

    def test_convert_log_preserves_series_markers(self, tmp_path):
        live, key = self.reference()
        src = tmp_path / "wal.log"
        with LogWriter(src) as w:
            w.write(DataPoint.make("m", 10, 1.0, {"node": "a"}))
            w.write(DataPoint.make("m", 20, 2.0, {"node": "a"}))
            w.write(DataPoint.make("m", 10, 3.0, {"node": "b"}))
            w.delete_series_before(key, 15)
        points, markers = convert_log(src, tmp_path / "wal.seg")
        assert (points, markers) == (3, 1)
        assert dumps(load(tmp_path / "wal.seg")) == dumps(live)

    def test_text_marker_rejects_garbage_key(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_text("m 1 2.0\n!delete_series_before 5 not{a}key{\n")
        from repro.tsdb import LogCorruption

        with pytest.raises(LogCorruption):
            list(iter_batches(path))
        assert load(path, strict=False).exact_point_count() == 1


# -- hypothesis: crash recovery under arbitrary torn writes ---------------

_HDR = struct.Struct("<BII")  # u8 type · u32 len · u32 crc

block_specs = st.lists(
    st.one_of(
        st.tuples(st.just("batch"), st.integers(0, 2)),
        st.tuples(st.just("del"), st.integers(0, 1)),
        st.tuples(st.just("delseries"), st.integers(0, 2)),
    ),
    min_size=1,
    max_size=8,
)


class TestTornWriteRecoveryProperty:
    """Satellite: ``strict=False`` recovery is *exact*, not best-effort.

    A WAL damaged at an arbitrary byte offset — truncated (torn write)
    or bit-flipped (media damage) — must recover precisely the blocks
    the framing rules promise, on single and sharded stores alike:

    - truncation keeps every block wholly inside the surviving prefix;
    - a flip under CRC cover (type byte, crc field, payload) loses
      exactly the damaged block — the length prefix bounds the blast;
    - a flip in the length field can't be framed past: the clean prefix
      before it survives, the damaged block never resurrects.
    """

    def build_wal(self, spec):
        """Write one block per spec entry (in memory); returns the raw
        bytes, the decoded items, and each block's ``(start, end)``
        byte range."""
        buf = io.BytesIO()
        w = SegmentWriter(buf)
        for i, (kind, n) in enumerate(spec):
            if kind == "batch":
                b = BatchBuilder()
                for j in range(n + 1):
                    b.add("m", 1000 * i + j, float(i), {"node": f"n{j}"})
                w.write_batch(b.build())
            elif kind == "del":
                w.delete_before(
                    1000 * i, exclude_suffix=".rollup" if n else None
                )
            else:
                w.delete_series_before(
                    parse_series_key(f"m{{node=n{n}}}"), 1000 * i
                )
        w.flush()
        raw = buf.getvalue()
        items = list(iter_segments(io.BytesIO(raw)))
        ranges, off = [], len(SEGMENT_MAGIC)
        while off < len(raw):
            _t, plen, _crc = _HDR.unpack_from(raw, off)
            ranges.append((off, off + _HDR.size + plen))
            off += _HDR.size + plen
        assert len(ranges) == len(items)
        return raw, items, ranges

    @staticmethod
    def replay(items, store):
        for item in items:
            if isinstance(item, DeleteSeriesBefore):
                store.delete_series_before(item.key, item.cutoff)
            elif isinstance(item, DeleteBefore):
                store.delete_before(
                    item.cutoff, exclude_suffix=item.exclude_suffix
                )
            else:
                store.put_batch(item)
        return store

    def assert_recovers(self, raw, expected_items):
        """Lenient recovery equals a replay of ``expected_items`` — on a
        single store and byte-identically on a 3-shard store."""
        single = load(io.BytesIO(raw), strict=False)
        assert dumps(single) == dumps(self.replay(expected_items, TSDB()))
        sharded = load(io.BytesIO(raw), strict=False, into=ShardedTSDB(3))
        assert dumps(sharded) == dumps(
            self.replay(expected_items, ShardedTSDB(3))
        )

    @given(spec=block_specs, frac=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_truncation_recovers_longest_valid_prefix(self, spec, frac):
        raw, items, ranges = self.build_wal(spec)
        lo = len(SEGMENT_MAGIC)
        cut = lo + int(frac * (len(raw) - lo))
        torn = raw[:cut]
        survivors = [it for it, (_s, e) in zip(items, ranges) if e <= cut]
        boundaries = {lo} | {e for _s, e in ranges}
        if cut not in boundaries:
            # A cut on a block boundary is a clean (shorter) file; any
            # other cut leaves a torn block that strict mode rejects.
            with pytest.raises(SegmentCorruption, match="truncated"):
                list(iter_segments(io.BytesIO(torn)))
        self.assert_recovers(torn, survivors)

    @given(spec=block_specs, frac=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_byte_flip_loses_at_most_the_damaged_block(self, spec, frac):
        raw, items, ranges = self.build_wal(spec)
        lo = len(SEGMENT_MAGIC)
        offset = min(lo + int(frac * (len(raw) - lo)), len(raw) - 1)
        damaged = bytearray(raw)
        damaged[offset] ^= 0xFF
        damaged = bytes(damaged)
        hit = next(i for i, (s, e) in enumerate(ranges) if s <= offset < e)
        start, _end = ranges[hit]
        with pytest.raises(SegmentCorruption):
            list(iter_segments(io.BytesIO(damaged)))
        in_length_field = start + 1 <= offset < start + 5
        if not in_length_field:
            # CRC-covered damage (type byte, crc field, payload): the
            # length prefix bounds the blast — exactly one block lost.
            self.assert_recovers(
                damaged, [it for i, it in enumerate(items) if i != hit]
            )
        else:
            # A lied-about length breaks framing: the clean prefix is
            # guaranteed, the damaged block must never resurrect, and
            # nothing un-CRC'd is ever invented.
            recovered = list(iter_segments(io.BytesIO(damaged), strict=False))
            recovered_ts = {
                int(t)
                for b in recovered
                if isinstance(b, PointBatch)
                for t in b.timestamps
            }
            all_ts = {
                int(t)
                for b in items
                if isinstance(b, PointBatch)
                for t in b.timestamps
            }
            assert recovered_ts <= all_ts  # nothing invented
            for it in items[:hit]:  # prefix blocks always survive
                if isinstance(it, PointBatch):
                    assert {int(t) for t in it.timestamps} <= recovered_ts
            if isinstance(items[hit], PointBatch):  # damage never returns
                assert not (
                    {int(t) for t in items[hit].timestamps} & recovered_ts
                )
