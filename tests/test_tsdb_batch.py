"""Batch/per-point equivalence for the columnar ingest path.

The batch path (`PointBatch` → `put_batch` → `SeriesStore.extend_batch`)
must be observationally identical to a sequence of `put` calls: same
out-of-order tolerance, same last-write-wins dedup, same query results —
regardless of where batch boundaries fall.
"""

import numpy as np
import pytest

from repro.tsdb import (
    BatchBuilder,
    DataPoint,
    PointBatch,
    Query,
    SeriesKey,
    SeriesStore,
    TSDB,
    aggregators,
    dumps,
)


def random_points(rng, n, n_nodes=4, t_max=2_000):
    """(metric, ts, value, tags) tuples with collisions and disorder."""
    metrics = ["air.co2.ppm", "air.no2.ugm3"]
    out = []
    for _ in range(n):
        out.append(
            (
                metrics[int(rng.integers(len(metrics)))],
                int(rng.integers(0, t_max)),
                float(rng.normal()),
                {"node": f"n{int(rng.integers(n_nodes))}", "city": "trondheim"},
            )
        )
    return out


def db_from_puts(points):
    db = TSDB()
    for m, t, v, tags in points:
        db.put(m, t, v, tags)
    return db


def db_from_batches(points, boundaries):
    """Write the same points split into batches at the given offsets."""
    db = TSDB()
    builder = BatchBuilder()
    cuts = set(boundaries)
    for i, (m, t, v, tags) in enumerate(points):
        builder.add(m, t, v, tags)
        if i in cuts:
            db.put_batch(builder.build())
    db.put_batch(builder.build())
    return db


class TestPutBatchEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_snapshot_identical_for_random_workloads(self, seed):
        rng = np.random.default_rng(seed)
        points = random_points(rng, 3_000)
        boundaries = sorted(rng.choice(3_000, size=7, replace=False).tolist())
        a = db_from_puts(points)
        b = db_from_batches(points, boundaries)
        assert dumps(a) == dumps(b)
        assert a.point_count == b.point_count
        assert a.write_count == b.write_count == 3_000

    def test_duplicate_timestamps_last_write_wins_within_batch(self):
        db = TSDB()
        db.put_batch(
            PointBatch.for_series("m", [10, 10, 10], [1.0, 2.0, 3.0])
        )
        sl = db.run(Query("m", 0, 100)).single()
        assert sl.timestamps.tolist() == [10]
        assert sl.values.tolist() == [3.0]

    def test_duplicate_timestamps_across_batch_boundary(self):
        # The later batch overwrites, exactly as a later put would.
        db = TSDB()
        db.put_series("m", [10, 20], [1.0, 2.0])
        db.put_series("m", [10], [9.0])
        sl = db.run(Query("m", 0, 100)).single()
        assert sl.values.tolist() == [9.0, 2.0]
        # Mirror with per-point puts.
        ref = TSDB()
        for t, v in [(10, 1.0), (20, 2.0), (10, 9.0)]:
            ref.put("m", t, v)
        assert dumps(ref) == dumps(db)

    def test_out_of_order_batch_matches_out_of_order_puts(self):
        ts = [50, 10, 30, 20, 40, 10]
        vals = [5.0, 1.0, 3.0, 2.0, 4.0, 1.5]
        batch_db = TSDB()
        batch_db.put_series("m", ts, vals, {"node": "a"})
        put_db = TSDB()
        for t, v in zip(ts, vals):
            put_db.put("m", t, v, {"node": "a"})
        assert dumps(batch_db) == dumps(put_db)

    def test_batch_then_point_then_batch_interleaving(self):
        db = TSDB()
        db.put_series("m", [0, 10], [0.0, 1.0])
        db.put("m", 5, 0.5)
        db.put_series("m", [7, 3], [0.7, 0.3])
        sl = db.run(Query("m", 0, 100)).single()
        assert sl.timestamps.tolist() == [0, 3, 5, 7, 10]
        assert sl.values.tolist() == [0.0, 0.3, 0.5, 0.7, 1.0]

    @pytest.mark.parametrize("agg", ["avg", "sum", "min", "max", "median", "dev", "count", "first", "last", "p90"])
    def test_query_results_identical(self, agg):
        rng = np.random.default_rng(99)
        points = random_points(rng, 2_000)
        a = db_from_puts(points)
        b = db_from_batches(points, [500, 501, 1500])
        qa = Query("air.co2.ppm", 0, 2_000, tags={"city": "trondheim"}, aggregator=agg)
        ra, rb = a.run(qa).single(), b.run(qa).single()
        assert np.array_equal(ra.timestamps, rb.timestamps)
        assert np.allclose(ra.values, rb.values, equal_nan=True)

    @pytest.mark.parametrize(
        "spec", ["5m-avg", "5m-median", "10m-max-nan", "10m-sum-zero", "15m-avg-previous", "15m-avg-linear", "5m-count-nan", "5m-first-nan", "5m-last-nan", "5m-dev-nan"]
    )
    def test_downsampled_results_identical(self, spec):
        rng = np.random.default_rng(7)
        points = random_points(rng, 2_000)
        a = db_from_puts(points)
        b = db_from_batches(points, [123, 1999])
        q = Query("air.no2.ugm3", 0, 2_000, downsample=spec, group_by=["node"])
        ra, rb = a.run(q), b.run(q)
        assert len(ra) == len(rb)
        for sa, sb in zip(ra, rb):
            assert sa.group_tags == sb.group_tags
            assert np.array_equal(sa.timestamps, sb.timestamps)
            assert np.allclose(sa.values, sb.values, equal_nan=True)

    def test_put_many_builds_one_batch(self):
        points = [
            DataPoint.make("m", t, float(t), {"n": "x"}) for t in [5, 1, 3, 1]
        ]
        db = TSDB()
        assert db.put_many(points) == 4
        sl = db.run(Query("m", 0, 10)).single()
        assert sl.timestamps.tolist() == [1, 3, 5]
        assert sl.values.tolist() == [1.0, 3.0, 5.0]  # second t=1 write won

    def test_empty_batch_is_a_noop(self):
        db = TSDB()
        assert db.put_batch(PointBatch.empty()) == 0
        assert db.put_batch(BatchBuilder().build()) == 0
        assert db.series_count == 0


class TestPointBatch:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PointBatch.for_series("m", [1, 2], [1.0])

    def test_key_idx_out_of_range_rejected(self):
        key = SeriesKey.make("m")
        with pytest.raises(ValueError):
            PointBatch((key,), [0, 1], [1, 2], [1.0, 2.0])

    def test_by_series_preserves_row_order_within_series(self):
        builder = BatchBuilder()
        builder.add("m", 10, 1.0, {"n": "a"})
        builder.add("m", 10, 2.0, {"n": "b"})
        builder.add("m", 10, 3.0, {"n": "a"})  # overwrites row 0 on ingest
        batch = builder.build()
        groups = {str(k): (ts.tolist(), v.tolist()) for k, ts, v in batch.by_series()}
        assert groups["m{n=a}"] == ([10, 10], [1.0, 3.0])
        assert groups["m{n=b}"] == ([10], [2.0])

    def test_concat_reencodes_key_dictionaries(self):
        b1 = PointBatch.for_series("m", [1], [1.0], {"n": "a"})
        b2 = PointBatch.for_series("m", [2], [2.0], {"n": "b"})
        b3 = PointBatch.for_series("m", [3], [3.0], {"n": "a"})
        cat = PointBatch.concat([b1, b2, b3])
        assert len(cat) == 3
        assert len(cat.keys) == 2
        db = TSDB()
        db.put_batch(cat)
        assert db.series_count == 2

    def test_iter_points_roundtrip(self):
        batch = PointBatch.for_series("m", [1, 2], [1.0, 2.0], {"n": "a"})
        pts = list(batch.iter_points())
        assert pts == [
            DataPoint.make("m", 1, 1.0, {"n": "a"}),
            DataPoint.make("m", 2, 2.0, {"n": "a"}),
        ]
        assert len(PointBatch.from_points(pts)) == 2

    def test_builder_add_series_interleaves_with_scalar_adds(self):
        builder = BatchBuilder()
        builder.add("m", 1, 1.0)
        builder.add_series("m", [2, 3], [2.0, 3.0])
        builder.add("m", 4, 4.0)
        assert len(builder) == 4
        db = TSDB()
        db.put_batch(builder.build())
        assert len(builder) == 0  # build() clears
        sl = db.run(Query("m", 0, 10)).single()
        assert sl.timestamps.tolist() == [1, 2, 3, 4]


class TestSeriesStoreExtendBatch:
    def test_fast_path_appends_in_place(self):
        store = SeriesStore()
        store.extend_batch([1, 2, 3], [1.0, 2.0, 3.0])
        store.extend_batch([4, 5], [4.0, 5.0])
        sl = store.scan()
        assert sl.timestamps.tolist() == [1, 2, 3, 4, 5]

    def test_slow_path_merges_with_pending_tail(self):
        store = SeriesStore()
        store.append(10, 10.0)
        store.append(5, 5.0)  # out of order -> tail
        store.extend_batch([7, 5], [7.0, 5.5])
        sl = store.scan()
        assert sl.timestamps.tolist() == [5, 7, 10]
        assert sl.values.tolist() == [5.5, 7.0, 10.0]  # batch overwrote tail

    def test_large_batch_grows_capacity(self):
        store = SeriesStore()
        ts = np.arange(10_000, dtype=np.int64)
        store.extend_batch(ts, ts.astype(np.float64))
        assert len(store) == 10_000
        assert store.latest() == (9_999, 9_999.0)

    def test_shape_mismatch_rejected(self):
        store = SeriesStore()
        with pytest.raises(ValueError):
            store.extend_batch([1, 2], [1.0])


class TestVectorizedAggregators:
    """The columnar/grouped forms must match the scalar reference."""

    @pytest.mark.parametrize("name", sorted(set(aggregators.names())))
    def test_columnar_matches_scalar_per_column(self, name):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(6, 40))
        matrix[rng.random(matrix.shape) < 0.3] = np.nan
        matrix[:, 7] = np.nan  # one all-NaN column
        scalar = aggregators.get(name)
        columnar = aggregators.get_columnar(name)
        expected = np.array([scalar(matrix[:, j]) for j in range(matrix.shape[1])])
        assert np.allclose(columnar(matrix), expected, equal_nan=True)

    @pytest.mark.parametrize("name", sorted(set(aggregators.names())))
    def test_grouped_matches_scalar_per_segment(self, name):
        gagg = aggregators.grouped(name)
        if gagg is None:
            pytest.skip("order statistic: scalar fallback by design")
        rng = np.random.default_rng(4)
        values = rng.normal(size=200)
        values[rng.random(200) < 0.25] = np.nan
        starts = np.array([0, 3, 50, 51, 120])
        ends = np.concatenate([starts[1:], [200]])
        scalar = aggregators.get(name)
        expected = np.array([scalar(values[s:e]) for s, e in zip(starts, ends)])
        assert np.allclose(gagg(values, starts), expected, equal_nan=True)

    def test_unknown_name_raises(self):
        with pytest.raises(aggregators.UnknownAggregator):
            aggregators.get_columnar("nope")
        with pytest.raises(aggregators.UnknownAggregator):
            aggregators.grouped("nope")

    def test_dev_is_stable_for_large_offsets(self):
        """E[x²]-E[x]² would cancel to 0 here; the two-pass form must not."""
        offset = 1e8
        col = np.array([0.1, 0.2, 0.3, 0.4]) + offset
        expected = float(np.std(col))
        matrix = col.reshape(-1, 1)
        assert aggregators.get_columnar("dev")(matrix)[0] == pytest.approx(
            expected, rel=1e-6
        )
        gdev = aggregators.grouped("dev")
        assert gdev(col, np.array([0]))[0] == pytest.approx(expected, rel=1e-6)


class TestDeleteBeforeIndexPrune:
    def test_dead_series_leave_no_index_residue(self):
        db = TSDB()
        for i in range(50):
            db.put("churn.metric", i, 1.0, {"node": f"n{i}", "rack": f"r{i % 5}"})
        db.put("kept.metric", 1_000, 1.0, {"node": "survivor"})
        dropped = db.delete_before(500)
        assert dropped == 50
        assert db.metrics() == ["kept.metric"]
        # The leak: empty postings used to linger forever under churn.
        assert db.catalog.tag_keys("churn.metric") == []
        assert db.catalog.cardinality("churn.metric") == 0
        assert "n0" not in db.catalog.tag_values("churn.metric", "node")
        assert db.catalog.tag_values("kept.metric", "node") == ["survivor"]
        assert len(db.catalog) == 1

    def test_index_still_works_after_prune_and_rewrite(self):
        db = TSDB()
        db.put("m", 1, 1.0, {"node": "a"})
        db.delete_before(100)
        db.put("m", 200, 2.0, {"node": "a"})
        res = db.run(Query("m", 0, 300, tags={"node": "a"}))
        assert res.single().values.tolist() == [2.0]

    def test_excluded_rollups_keep_their_index_entries(self):
        db = TSDB()
        db.put("m.rollup", 1, 1.0, {"node": "a"})
        db.put("m", 1, 1.0, {"node": "a"})
        db.delete_before(100, exclude_suffix=".rollup")
        assert db.metrics() == ["m.rollup"]
        assert db.catalog.tag_values("m.rollup", "node") == ["a"]
