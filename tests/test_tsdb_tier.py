"""Tiered storage engine tests: compaction, cold paging, rollup tiers.

The subsystem's contracts, in the order they stack:

- **Compaction equivalence** (hypothesis-pinned): for *any* interleaving
  of puts and retention markers, in either durability format, single or
  sharded, restoring the compacted log is **byte-identical** (via
  ``dumps``) to replaying the original — compaction may only change
  replay *cost*, never replay *result*;
- **Crash safety**: a crash mid-compaction leaves the original WAL
  intact plus a stale ``.compact.tmp`` the next run removes — never a
  half-written log;
- **Cold-shard paging**: keyed operations replay exactly the owning
  shard; a fully paged :class:`ColdShardPager` equals an eager
  ``restore_from_dir`` byte-for-byte;
- **Rollup tiers**: the raw→5m→1h cascade is bucket-aligned, scoped,
  journaled through both WAL formats (replay reproduces the tiered
  state) and replicates through the standard replication vocabulary.
"""

import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb import (
    ColdShardPager,
    CompactionPolicy,
    Compactor,
    DataPoint,
    DurableStore,
    PointBatch,
    Query,
    SeriesKey,
    ShardedTSDB,
    TSDB,
    Tier,
    TierPolicy,
    compact_dir,
    compact_log,
    dumps,
    load,
    segment_stats,
    shard_for_key,
)
from repro.tsdb.persistence import LogWriter
from repro.tsdb.segments import SegmentWriter
from repro.tsdb.tier.compact import COMPACT_TMP_SUFFIX

# -- shared op-interleaving machinery ------------------------------------

_METRICS = ("air.co2", "air.no2", "weather.temp")
_NODES = ("n1", "n2", "n3", "n4")

_timestamps = st.integers(min_value=0, max_value=100_000)
_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

_put_op = st.tuples(
    st.just("put"),
    st.sampled_from(_METRICS),
    st.sampled_from(_NODES),
    _timestamps,
    _values,
)
_delete_before_op = st.tuples(st.just("delete_before"), _timestamps)
_delete_series_op = st.tuples(
    st.just("delete_series_before"),
    st.sampled_from(_METRICS),
    st.sampled_from(_NODES),
    _timestamps,
)
ops_lists = st.lists(
    st.one_of(_put_op, _delete_before_op, _delete_series_op),
    min_size=0,
    max_size=60,
)


def _key(metric: str, node: str) -> SeriesKey:
    return SeriesKey.make(metric, {"node": node})


def _write_ops(writer, ops) -> None:
    """Append an op interleaving to a WAL writer, one block per marker
    (flushes keep the file fragmented — the compactor's natural prey)."""
    for op in ops:
        if op[0] == "put":
            _, metric, node, ts, val = op
            writer.write(DataPoint(_key(metric, node), ts, val))
            writer.flush()
        elif op[0] == "delete_before":
            writer.delete_before(op[1])
        else:
            _, metric, node, ts = op
            writer.delete_series_before(_key(metric, node), ts)
    writer.close()


def _apply_ops(db, ops) -> None:
    for op in ops:
        if op[0] == "put":
            _, metric, node, ts, val = op
            db.put(metric, ts, val, {"node": node})
        elif op[0] == "delete_before":
            db.delete_before(op[1])
        else:
            _, metric, node, ts = op
            db.delete_series_before(_key(metric, node), ts)


class TestCompactionEquivalence:
    """compact(log) restores byte-identical to replay(log)."""

    @given(ops=ops_lists, fmt=st.sampled_from(["binary", "text"]))
    @settings(max_examples=60, deadline=None)
    def test_single_store_any_interleaving(self, tmp_path_factory, ops, fmt):
        wal = tmp_path_factory.mktemp("tier") / ("w.seg" if fmt == "binary" else "w.log")
        writer = SegmentWriter(wal) if fmt == "binary" else LogWriter(wal)
        _write_ops(writer, ops)
        expected = dumps(load(wal, strict=False), format="binary")

        result = compact_log(wal)
        assert dumps(load(wal), format="binary") == expected
        # The compacted file stays in the source format...
        assert result.path == wal
        if fmt == "binary":
            # ...and every retention marker got resolved away.
            assert segment_stats(wal, strict=True).marker_blocks == 0

    @given(ops=ops_lists, n=st.sampled_from([1, 2, 4, 7]),
           fmt=st.sampled_from(["binary", "text"]))
    @settings(max_examples=40, deadline=None)
    def test_sharded_any_interleaving(self, tmp_path_factory, ops, n, fmt):
        directory = tmp_path_factory.mktemp("tier-sharded")
        ext = "seg" if fmt == "binary" else "log"
        cls = SegmentWriter if fmt == "binary" else LogWriter
        writers = [
            cls(directory / f"shard-{i}-of-{n}.{ext}") for i in range(n)
        ]
        # Route ops exactly as the sharded store would: keyed ops to the
        # owning shard's WAL, global markers to every shard's.
        for op in ops:
            if op[0] == "put":
                _, metric, node, ts, val = op
                key = _key(metric, node)
                w = writers[shard_for_key(key, n)]
                w.write(DataPoint(key, ts, val))
                w.flush()
            elif op[0] == "delete_before":
                for w in writers:
                    w.delete_before(op[1])
            else:
                _, metric, node, ts = op
                key = _key(metric, node)
                writers[shard_for_key(key, n)].delete_series_before(key, ts)
        for w in writers:
            w.close()

        expected = dumps(
            ShardedTSDB.restore_from_dir(directory), format="binary"
        )
        results = compact_dir(directory)
        assert set(results) == set(range(n))
        restored = ShardedTSDB.restore_from_dir(directory, mmap=True)
        assert dumps(restored, format="binary") == expected
        # Replaying ops directly agrees too (routing fidelity).
        direct = ShardedTSDB(n)
        _apply_ops(direct, ops)
        assert dumps(direct, format="binary") == expected

    def test_marker_heavy_log_shrinks(self, tmp_path):
        wal = tmp_path / "w.seg"
        with SegmentWriter(wal) as w:
            for i in range(500):
                w.write(DataPoint(_key("air.co2", "n1"), 1000 + i, float(i)))
                w.flush()
            w.delete_before(1400)
        before = segment_stats(wal)
        result = compact_log(wal)
        after = segment_stats(wal)
        assert before.blocks == 501 and before.marker_blocks == 1
        assert after.batch_blocks == 1 and after.marker_blocks == 0
        assert result.bytes_ratio > 5.0
        assert result.points == 100  # only the points the marker spared

    def test_text_to_binary_migration(self, tmp_path):
        wal = tmp_path / "w.log"
        with LogWriter(wal) as w:
            for i in range(20):
                w.write(DataPoint(_key("air.co2", "n1"), i, float(i)))
        expected = dumps(load(wal), format="binary")
        compact_log(wal, format="binary")
        assert segment_stats(wal, strict=True).batch_blocks == 1
        assert dumps(load(wal), format="binary") == expected


class TestCompactionCrashSafety:
    def _fragmented(self, path, n=50):
        with SegmentWriter(path) as w:
            for i in range(n):
                w.write(DataPoint(_key("air.co2", "n1"), i, float(i)))
                w.flush()

    def test_crash_mid_stage_leaves_original_intact(self, tmp_path, monkeypatch):
        wal = tmp_path / "w.seg"
        self._fragmented(wal)
        original = wal.read_bytes()

        import repro.tsdb.tier.compact as compact_mod

        real_snapshot = compact_mod.snapshot

        def torn_snapshot(db, dest, **kwargs):
            real_snapshot(db, dest, **kwargs)
            # Tear the staged file's tail, then die — the crash window
            # after some bytes hit disk but before the atomic rename.
            data = Path(dest).read_bytes()
            Path(dest).write_bytes(data[: len(data) // 2])
            raise RuntimeError("power loss")

        monkeypatch.setattr(compact_mod, "snapshot", torn_snapshot)
        with pytest.raises(RuntimeError, match="power loss"):
            compact_log(wal)
        assert wal.read_bytes() == original
        assert not list(tmp_path.glob("*" + COMPACT_TMP_SUFFIX))

    def test_stale_tmp_from_dead_predecessor_is_discarded(self, tmp_path):
        wal = tmp_path / "w.seg"
        self._fragmented(wal)
        expected = dumps(load(wal), format="binary")
        # A predecessor crashed between staging and rename: its torn
        # .compact.tmp must never be trusted, only removed.
        stage = tmp_path / ("w.seg" + COMPACT_TMP_SUFFIX)
        stage.write_bytes(b"RSEG\x00\x01\r\ngarbage torn tail")
        compact_log(wal)
        assert dumps(load(wal), format="binary") == expected
        assert not stage.exists()

    def test_torn_tail_compacts_to_recoverable_prefix(self, tmp_path):
        wal = tmp_path / "w.seg"
        self._fragmented(wal, n=50)
        recoverable = dumps(load(wal, strict=False), format="binary")
        with open(wal, "ab") as fh:  # torn final append
            fh.write(b"\x01\xff\xff")
        assert dumps(load(wal, strict=False), format="binary") == recoverable
        compact_log(wal)  # lenient by default: recovers, then rewrites
        assert dumps(load(wal, strict=True), format="binary") == recoverable


class TestCompactorPolicy:
    def test_trigger_thresholds(self, tmp_path):
        wal = tmp_path / "w.seg"
        with SegmentWriter(wal) as w:
            for i in range(10):
                w.write(DataPoint(_key("air.co2", "n1"), i, float(i)))
                w.flush()
        c = Compactor(wal, policy=CompactionPolicy(max_blocks=20))
        assert not c.should_compact()
        assert c.maybe_compact() is None and c.runs == 0
        tight = Compactor(wal, policy=CompactionPolicy(max_blocks=4))
        result = tight.maybe_compact()
        assert result is not None and tight.runs == 1
        assert result.blocks_after <= 2  # one batch block + snapshot header
        # Once compacted, the same policy no longer triggers.
        assert tight.maybe_compact() is None and tight.runs == 1

    def test_min_bytes_floor(self, tmp_path):
        wal = tmp_path / "w.seg"
        with SegmentWriter(wal) as w:
            for i in range(10):
                w.write(DataPoint(_key("air.co2", "n1"), i, float(i)))
                w.flush()
        c = Compactor(
            wal, policy=CompactionPolicy(max_blocks=4, min_bytes=1 << 30)
        )
        assert not c.should_compact()  # tiny files never trigger

    def test_text_logs_never_trigger(self, tmp_path):
        wal = tmp_path / "w.log"
        with LogWriter(wal) as w:
            for i in range(100):
                w.write(DataPoint(_key("air.co2", "n1"), i, float(i)))
        c = Compactor(wal, policy=CompactionPolicy(max_blocks=1))
        assert c.stats() is None and c.maybe_compact() is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(max_blocks=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_marker_blocks=0)
        with pytest.raises(ValueError):
            CompactionPolicy(min_bytes=-1)

    def test_compact_dir_with_policy_skips_compact_shards(self, tmp_path):
        db = ShardedTSDB(2)
        for i in range(20):
            db.put("air.co2", i, float(i), {"node": f"n{i % 4}"})
        db.snapshot_to_dir(tmp_path, format="binary")
        # Fragment exactly one shard with appended per-point blocks.
        key = next(
            k for k in (_key("air.co2", n) for n in _NODES)
            if shard_for_key(k, 2) == 0
        )
        with SegmentWriter(tmp_path / "shard-0-of-2.seg", append=True) as w:
            for i in range(40):
                w.write(DataPoint(key, 100 + i, float(i)))
                w.flush()
        results = compact_dir(tmp_path, policy=CompactionPolicy(max_blocks=8))
        assert set(results) == {0}


class TestDurableStore:
    @pytest.mark.parametrize("fmt", ["binary", "text"])
    def test_replay_rebuilds_store(self, tmp_path, fmt):
        wal = tmp_path / "wal"
        store = DurableStore(TSDB(), wal, format=fmt)
        store.put("air.co2", 100, 400.0, {"node": "n1"})
        store.put_point(DataPoint(_key("air.co2", "n2"), 110, 401.0))
        store.put_batch(
            PointBatch.from_points(
                [DataPoint(_key("air.no2", "n1"), t, float(t)) for t in range(5)]
            )
        )
        store.put_series("weather.temp", [0, 60, 120], [1.0, 2.0, 3.0],
                         {"node": "n3"})
        store.put_many([DataPoint(_key("air.co2", "n1"), 150, 402.0)])
        store.delete_before(50)
        store.delete_series_before(_key("air.no2", "n1"), 3)
        store.close()
        assert dumps(load(wal, strict=True), format="binary") == dumps(
            store.wrapped, format="binary"
        )

    def test_wal_precedes_commit(self, tmp_path):
        # Durability before visibility: the journal carries the write
        # even though the store refused it.
        class Refusing(TSDB):
            def put(self, metric, timestamp, value, tags=None):
                raise RuntimeError("store down")

        wal = tmp_path / "wal.seg"
        store = DurableStore(Refusing(), wal)
        with pytest.raises(RuntimeError):
            store.put("air.co2", 1, 1.0, {"node": "n1"})
        store.close()
        assert load(wal).point_count == 1

    def test_suspend_wal_compaction_mid_stream(self, tmp_path):
        wal = tmp_path / "wal.seg"
        store = DurableStore(TSDB(), wal)
        for i in range(100):
            store.put("air.co2", i, float(i), {"node": "n1"})
        store.delete_before(50)
        with store.suspend_wal() as path:
            assert path == wal
            result = compact_log(path)
            assert result.blocks_after < result.blocks_before
        # The reopened journal keeps appending where compaction left off.
        for i in range(100, 110):
            store.put("air.co2", i, float(i), {"node": "n1"})
        store.close()
        assert dumps(load(wal), format="binary") == dumps(
            store.wrapped, format="binary"
        )

    def test_writes_during_suspend_block_until_reopen(self, tmp_path):
        store = DurableStore(TSDB(), tmp_path / "wal.seg")
        entered = threading.Event()
        release = threading.Event()
        written = threading.Event()

        def writer():
            entered.wait(5)
            store.put("air.co2", 1, 1.0, {"node": "n1"})
            written.set()

        t = threading.Thread(target=writer)
        t.start()
        with store.suspend_wal():
            entered.set()
            # The concurrent write must park on the store lock while the
            # journal is closed — it may not slip through un-journaled.
            assert not written.wait(0.15)
            release.set()
        t.join(5)
        assert written.is_set()
        store.close()
        assert load(store.wal_path).point_count == 1


class TestColdShardPager:
    @pytest.fixture()
    def snapshot_dir(self, tmp_path):
        db = ShardedTSDB(4)
        for metric in _METRICS:
            for node in _NODES:
                for t in range(25):
                    db.put(metric, t * 60, float(t), {"node": node})
        db.snapshot_to_dir(tmp_path, format="binary")
        self.eager = db
        return tmp_path

    def test_keyed_read_pages_only_owning_shard(self, snapshot_dir):
        pager = ColdShardPager(snapshot_dir)
        assert pager.resident_shards == ()
        assert pager.resident_points == 0
        key = _key("air.co2", "n1")
        sl = pager.series_slice(key)
        owner = pager.shard_of(key)
        assert pager.resident_shards == (owner,)
        assert np.array_equal(
            sl.timestamps, self.eager.series_slice(key).timestamps
        )
        # Footprint tracks only the resident shard.
        assert 0 < pager.resident_points < self.eager.point_count

    def test_keyed_write_pages_before_committing(self, snapshot_dir):
        pager = ColdShardPager(snapshot_dir)
        key = _key("air.co2", "n1")
        # Overwrite a snapshotted timestamp on a *cold* shard: if the
        # shard paged in after the write, replay would resurrect the
        # snapshotted value over the fresh one.
        pager.put("air.co2", 0, 999.0, {"node": "n1"})
        sl = pager.series_slice(key, 0, 0)
        assert sl.values[0] == 999.0

    def test_global_query_pages_everything(self, snapshot_dir):
        pager = ColdShardPager(snapshot_dir)
        got = pager.run(Query("air.co2", 0, 10_000, tags={"node": "*"}))
        assert pager.resident_shards == (0, 1, 2, 3)
        want = self.eager.run(Query("air.co2", 0, 10_000, tags={"node": "*"}))
        assert sorted(s.source_series for s in got.series) == sorted(
            s.source_series for s in want.series
        )

    def test_fully_paged_pager_equals_eager_restore(self, snapshot_dir):
        pager = ColdShardPager(snapshot_dir)
        assert dumps(pager, format="binary") == dumps(
            ShardedTSDB.restore_from_dir(snapshot_dir), format="binary"
        )

    def test_match_delegates_with_full_key_set(self, snapshot_dir):
        pager = ColdShardPager(snapshot_dir)
        keys = pager._match("air.co2", {"node": "n1|n2"})
        assert len(keys) == 2 and pager.resident_shards == (0, 1, 2, 3)

    def test_private_probes_never_page(self, snapshot_dir):
        pager = ColdShardPager(snapshot_dir)
        with pytest.raises(AttributeError):
            pager._no_such_private_thing
        repr(pager)
        assert pager.resident_shards == ()

    def test_misrouted_shard_file_detected_on_page_in(self, tmp_path):
        db = ShardedTSDB(2)
        for node in _NODES:
            db.put("air.co2", 0, 1.0, {"node": node})
        db.snapshot_to_dir(tmp_path, format="binary")
        a = (tmp_path / "shard-0-of-2.seg").read_bytes()
        b = (tmp_path / "shard-1-of-2.seg").read_bytes()
        (tmp_path / "shard-0-of-2.seg").write_bytes(b)
        (tmp_path / "shard-1-of-2.seg").write_bytes(a)
        pager = ColdShardPager(tmp_path)
        with pytest.raises(ValueError, match="routes to"):
            pager.metrics()


class TestRollupTiers:
    HOUR = 3600
    DAY = 86400

    def _policy(self):
        return TierPolicy.parse("1d:5m-avg:.5m", "10d:1h-avg:.1h")

    def _aged_store(self, db=None, now=30 * DAY):
        db = db if db is not None else TSDB()
        for t in range(0, now, self.HOUR // 2):  # 20-day history, 2/hour
            db.put("air.co2", t, float(t % 7), {"node": "n1"})
        return db

    def test_parse_and_validation(self):
        tier = Tier.parse("1d:300s-avg:.5m")
        assert tier.max_age == self.DAY and tier.downsample.width == 300
        with pytest.raises(ValueError, match="strictly increase"):
            TierPolicy.parse("2d:5m-avg:.5m", "1d:1h-avg:.1h")
        with pytest.raises(ValueError, match="distinct"):
            TierPolicy.parse("1d:5m-avg:.x", "2d:1h-avg:.x")
        with pytest.raises(ValueError, match="start with"):
            Tier.parse("1d:5m-avg:5m")
        with pytest.raises(ValueError, match="spec"):
            Tier.parse("1d:5m-avg")

    def test_cascade_produces_all_tiers_in_one_pass(self):
        now = 30 * self.DAY
        db = self._aged_store(now=now)
        report = self._policy().enforce(db, now)
        assert sorted(db.metrics()) == ["air.co2", "air.co2.1h", "air.co2.5m"]
        assert len(report.stages) == 2
        assert report.rolled_points > 0 and report.dropped_points > 0
        # Raw keeps only the last day (bucket-aligned).
        raw = db.series_slice(_key("air.co2", "n1"))
        assert raw.timestamps.min() >= now - self.DAY - 300
        # The 1h tier exists because fresh 5m points older than the 1h
        # horizon cascaded down within the same pass.
        hourly = db.series_slice(_key("air.co2.1h", "n1"))
        assert len(hourly) > 0
        assert (np.diff(hourly.timestamps) % self.HOUR == 0).all()

    def test_only_complete_buckets_roll(self):
        db = TSDB()
        width = 300
        policy = TierPolicy((Tier(600, Tier.parse("1d:5m-avg:.5m").downsample,
                                  ".5m"),))
        # now lands mid-bucket: the straddling bucket must stay raw.
        now = 10 * width + 150
        for t in range(0, now, 60):
            db.put("air.co2", t, 1.0, {"node": "n1"})
        policy.enforce(db, now)
        cutoff = ((now - 600) // width) * width
        raw = db.series_slice(_key("air.co2", "n1"))
        assert raw.timestamps.min() == cutoff  # nothing past the bucket edge
        rolled = db.series_slice(_key("air.co2.5m", "n1"))
        assert rolled.timestamps.max() < cutoff

    def test_tags_scope_the_pass(self):
        now = 30 * self.DAY
        db = TSDB()
        for t in range(0, now, self.HOUR):
            db.put("air.co2", t, 1.0, {"node": "n1", "city": "a"})
            db.put("air.co2", t, 2.0, {"node": "n2", "city": "b"})
        self._policy().enforce(db, now, tags={"city": "a"})
        assert len(db.series_slice(
            SeriesKey.make("air.co2", {"node": "n2", "city": "b"}))
        ) == now // self.HOUR  # city b untouched
        assert len(db.series_slice(
            SeriesKey.make("air.co2.5m", {"node": "n1", "city": "a"}))
        ) > 0

    def test_enforce_is_idempotent_until_time_advances(self):
        now = 30 * self.DAY
        db = self._aged_store(now=now)
        policy = self._policy()
        policy.enforce(db, now)
        state = dumps(db, format="binary")
        second = policy.enforce(db, now)
        assert second.rolled_points == 0 and second.dropped_points == 0
        assert dumps(db, format="binary") == state

    @pytest.mark.parametrize("fmt", ["binary", "text"])
    def test_wal_replay_reproduces_tiered_state(self, tmp_path, fmt):
        now = 30 * self.DAY
        wal = tmp_path / "wal"
        # Journal the ingest AND the tiering through the same WAL.
        store = DurableStore(TSDB(), wal, format=fmt)
        self._aged_store(db=store, now=now)
        self._policy().enforce(store, now)
        store.close()
        assert dumps(load(wal, strict=True), format="binary") == dumps(
            store.wrapped, format="binary"
        )

    @pytest.mark.parametrize("fmt", ["binary", "text"])
    def test_explicit_wal_tee_reproduces_tiered_state(self, tmp_path, fmt):
        # The raw-store path: no DurableStore, the pass itself journals
        # its puts and markers into a caller-owned writer.
        now = 30 * self.DAY
        wal = tmp_path / "wal"
        writer = SegmentWriter(wal) if fmt == "binary" else LogWriter(wal)
        db = TSDB()
        for t in range(0, now, self.HOUR):
            p = DataPoint(_key("air.co2", "n1"), t, float(t % 5))
            db.put_point(p)
            writer.write(p)
        self._policy().enforce(db, now, wal=writer)
        writer.close()
        assert dumps(load(wal, strict=True), format="binary") == dumps(
            db, format="binary"
        )

    def test_tiering_replicates_through_the_log(self):
        from repro.replication import ReplicatedStore
        from repro.tsdb.segments import (
            DeleteBefore,
            DeleteSeriesBefore,
            decode_block,
            decode_frame,
        )

        now = 30 * self.DAY
        primary = ReplicatedStore(TSDB())
        self._aged_store(db=primary, now=now)
        self._policy().enforce(primary, now)
        # Apply the replication stream the way a follower would.
        follower = TSDB()
        for _, frame in primary.log.pending_after(0):
            item = decode_block(*decode_frame(frame))
            if isinstance(item, DeleteSeriesBefore):
                follower.delete_series_before(item.key, item.cutoff)
            elif isinstance(item, DeleteBefore):
                follower.delete_before(item.cutoff,
                                       exclude_suffix=item.exclude_suffix)
            else:
                follower.put_batch(item)
        assert dumps(follower, format="binary") == dumps(
            primary.wrapped, format="binary"
        )

    def test_sharded_store_supported(self):
        now = 30 * self.DAY
        db = ShardedTSDB(3)
        for node in _NODES:
            for t in range(0, now, self.HOUR):
                db.put("air.co2", t, float(t % 3), {"node": node})
        report = self._policy().enforce(db, now)
        assert report.dropped_points > 0
        assert sorted(db.metrics()) == ["air.co2", "air.co2.1h", "air.co2.5m"]


class TestCityPolicyTiers:
    def test_retention_and_tiers_are_mutually_exclusive(self):
        from repro.region.policy import CityPolicy
        from repro.tsdb.retention import RetentionPolicy

        with pytest.raises(ValueError, match="mutually exclusive"):
            CityPolicy(
                city="trondheim",
                retention=RetentionPolicy(raw_max_age=3600),
                tiers=TierPolicy.parse("1d:5m-avg:.5m"),
            )

    def test_hub_enforces_tier_policy_per_city(self):
        from repro.region.hub import RegionalHub
        from repro.region.policy import CityPolicy
        from repro.simclock import Scheduler, SimClock

        day = 86400
        now = 30 * day
        hub = RegionalHub(TSDB(), Scheduler(SimClock(start=0)))
        ingress = hub.register_city(CityPolicy(
            city="trondheim",
            tiers=TierPolicy.parse("1d:5m-avg:.5m", "10d:1h-avg:.1h"),
        ))
        ingress.put_batch(PointBatch.from_points([
            DataPoint(
                SeriesKey.make("air.co2",
                               {"city": "trondheim", "node": "n1"}),
                t, float(t % 7),
            )
            for t in range(0, now, 1800)
        ]))
        hub.pump(now=now)
        rolled = hub.enforce_retention(now)
        assert rolled["trondheim"].dropped_points > 0
        assert sorted(hub.store.metrics()) == [
            "air.co2", "air.co2.1h", "air.co2.5m"
        ]
        assert hub.city_stats("trondheim")["retention_dropped"] > 0
