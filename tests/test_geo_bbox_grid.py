"""Tests for repro.geo.bbox and repro.geo.grid."""

import numpy as np
import pytest

from repro.geo import BoundingBox, GeoPoint, Grid, TRONDHEIM


class TestBoundingBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundingBox(south=2.0, west=0.0, north=1.0, east=1.0)
        with pytest.raises(ValueError):
            BoundingBox(south=0.0, west=2.0, north=1.0, east=1.0)

    def test_around_contains_circle(self):
        box = BoundingBox.around(TRONDHEIM, 1000.0)
        for bearing in range(0, 360, 30):
            p = TRONDHEIM.destination(float(bearing), 999.0)
            assert box.contains(p)

    def test_around_is_tight(self):
        box = BoundingBox.around(TRONDHEIM, 1000.0)
        # Corners are sqrt(2) * r away; 3 km is well outside.
        assert not box.contains(TRONDHEIM.destination(0.0, 3000.0))

    def test_of_points(self):
        pts = [GeoPoint(1.0, 1.0), GeoPoint(2.0, 3.0), GeoPoint(0.5, 2.0)]
        box = BoundingBox.of_points(pts)
        assert box.south == 0.5
        assert box.north == 2.0
        assert box.west == 1.0
        assert box.east == 3.0

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of_points([])

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 4.0)
        assert box.center.lat == 1.0
        assert box.center.lon == 2.0

    def test_contains_boundary(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains(GeoPoint(0.0, 0.0))
        assert box.contains(GeoPoint(1.0, 1.0))
        assert not box.contains(GeoPoint(1.0001, 1.0))

    def test_intersects(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        c = BoundingBox(5.0, 5.0, 6.0, 6.0)
        assert a.intersects(b)
        assert b.intersects(a)
        assert not a.intersects(c)

    def test_dimensions_positive(self):
        box = BoundingBox.around(TRONDHEIM, 500.0)
        assert box.width_m == pytest.approx(1000.0, rel=0.01)
        assert box.height_m == pytest.approx(1000.0, rel=0.01)

    def test_expanded(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0).expanded(0.5)
        assert box.south == -0.5
        assert box.east == 1.5


class TestGrid:
    def make(self, rows=4, cols=5):
        return Grid(BoundingBox(0.0, 0.0, 4.0, 5.0), rows=rows, cols=cols)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Grid(BoundingBox(0.0, 0.0, 1.0, 1.0), rows=0, cols=3)

    def test_cell_of_sw_corner(self):
        assert self.make().cell_of(GeoPoint(0.0, 0.0)) == (0, 0)

    def test_cell_of_ne_edge_clamps_to_last_cell(self):
        assert self.make().cell_of(GeoPoint(4.0, 5.0)) == (3, 4)

    def test_cell_of_outside_is_none(self):
        assert self.make().cell_of(GeoPoint(-1.0, 0.0)) is None

    def test_cell_center_round_trip(self):
        g = self.make()
        for r in range(g.rows):
            for c in range(g.cols):
                assert g.cell_of(g.cell_center(r, c)) == (r, c)

    def test_cell_center_out_of_range(self):
        with pytest.raises(IndexError):
            self.make().cell_center(4, 0)

    def test_add_and_mean(self):
        g = self.make()
        assert g.add(GeoPoint(0.5, 0.5), 10.0)
        assert g.add(GeoPoint(0.5, 0.5), 20.0)
        mean = g.mean_field()
        assert mean[0, 0] == 15.0
        assert np.isnan(mean[1, 1])

    def test_add_outside_returns_false(self):
        g = self.make()
        assert not g.add(GeoPoint(10.0, 10.0), 1.0)
        assert g.coverage() == 0.0

    def test_coverage(self):
        g = self.make(rows=2, cols=2)
        g.add(GeoPoint(0.5, 0.5), 1.0)
        assert g.coverage() == 0.25

    def test_nonempty_cells(self):
        g = self.make(rows=2, cols=2)
        g.add(GeoPoint(0.5, 0.5), 1.0)
        g.add(GeoPoint(3.5, 4.5), 1.0)
        assert set(g.nonempty_cells()) == {(0, 0), (1, 1)}
