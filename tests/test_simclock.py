"""Tests for repro.simclock: clock, scheduler, and solar model."""

import datetime as dt

import pytest

from repro.simclock import (
    CTT_EPOCH,
    DAY,
    HOUR,
    MINUTE,
    ClockError,
    Scheduler,
    SimClock,
    day_of_week,
    day_of_year,
    daylight_fraction,
    floor_to,
    from_datetime,
    hour_of_day,
    is_daylight,
    is_weekend,
    solar_elevation_deg,
    solar_irradiance_wm2,
    sunrise_sunset,
    to_datetime,
)

TRD_LAT, TRD_LON = 63.43, 10.40


class TestSimClock:
    def test_default_epoch_is_jan_2017(self):
        clock = SimClock()
        assert clock.datetime() == dt.datetime(2017, 1, 1, tzinfo=dt.timezone.utc)

    def test_advance(self):
        clock = SimClock(start=1000)
        assert clock.advance(50) == 1050
        assert clock.now() == 1050
        assert clock.elapsed() == 50

    def test_advance_negative_raises(self):
        with pytest.raises(ClockError):
            SimClock().advance(-1)

    def test_advance_to_backwards_raises(self):
        clock = SimClock(start=1000)
        with pytest.raises(ClockError):
            clock.advance_to(999)

    def test_advance_to_same_time_is_ok(self):
        clock = SimClock(start=1000)
        assert clock.advance_to(1000) == 1000

    def test_isoformat(self):
        assert SimClock().isoformat() == "2017-01-01T00:00:00Z"


class TestTimeHelpers:
    def test_round_trips(self):
        when = dt.datetime(2017, 6, 15, 12, 30, tzinfo=dt.timezone.utc)
        assert to_datetime(from_datetime(when)) == when

    def test_naive_datetime_treated_as_utc(self):
        naive = dt.datetime(2017, 6, 15, 12, 0)
        aware = dt.datetime(2017, 6, 15, 12, 0, tzinfo=dt.timezone.utc)
        assert from_datetime(naive) == from_datetime(aware)

    def test_hour_of_day(self):
        ts = from_datetime(dt.datetime(2017, 3, 1, 13, 30))
        assert hour_of_day(ts) == 13.5

    def test_day_of_year(self):
        assert day_of_year(CTT_EPOCH) == 1

    def test_weekdays(self):
        # 2017-01-01 was a Sunday.
        assert day_of_week(CTT_EPOCH) == 6
        assert is_weekend(CTT_EPOCH)
        assert not is_weekend(CTT_EPOCH + 2 * DAY)  # Tuesday

    def test_floor_to(self):
        assert floor_to(1234, 300) == 1200
        assert floor_to(1200, 300) == 1200
        with pytest.raises(ValueError):
            floor_to(100, 0)


class TestScheduler:
    def test_events_run_in_time_order(self):
        sched = Scheduler(SimClock(start=0))
        order = []
        sched.call_at(50, lambda now: order.append(("b", now)))
        sched.call_at(10, lambda now: order.append(("a", now)))
        sched.run_until(100)
        assert order == [("a", 10), ("b", 50)]

    def test_fifo_for_same_timestamp(self):
        sched = Scheduler(SimClock(start=0))
        order = []
        sched.call_at(10, lambda now: order.append(1))
        sched.call_at(10, lambda now: order.append(2))
        sched.run_until(10)
        assert order == [1, 2]

    def test_clock_lands_exactly_on_deadline(self):
        sched = Scheduler(SimClock(start=0))
        sched.call_at(10, lambda now: None)
        sched.run_until(25)
        assert sched.clock.now() == 25

    def test_cancel(self):
        sched = Scheduler(SimClock(start=0))
        fired = []
        handle = sched.call_at(10, lambda now: fired.append(now))
        handle.cancel()
        sched.run_until(100)
        assert fired == []
        assert sched.pending() == 0

    def test_call_after(self):
        sched = Scheduler(SimClock(start=100))
        fired = []
        sched.call_after(5, fired.append)
        sched.run_until(200)
        assert fired == [105]

    def test_past_events_clamped_to_now(self):
        sched = Scheduler(SimClock(start=100))
        fired = []
        sched.call_at(10, fired.append)
        sched.run_until(100)
        assert fired == [100]

    def test_recurring(self):
        sched = Scheduler(SimClock(start=0))
        fired = []
        sched.call_every(10, fired.append)
        sched.run_until(35)
        assert fired == [10, 20, 30]

    def test_recurring_cancel_stops_series(self):
        sched = Scheduler(SimClock(start=0))
        fired = []
        handle = sched.call_every(10, fired.append)
        sched.run_until(25)
        handle.cancel()
        sched.run_until(100)
        assert fired == [10, 20]

    def test_recurring_with_custom_start(self):
        sched = Scheduler(SimClock(start=0))
        fired = []
        sched.call_every(10, fired.append, start_after=0)
        sched.run_until(15)
        assert fired == [0, 10]

    def test_recurring_invalid_interval(self):
        with pytest.raises(ValueError):
            Scheduler().call_every(0, lambda now: None)

    def test_nested_scheduling(self):
        sched = Scheduler(SimClock(start=0))
        fired = []

        def outer(now):
            fired.append(("outer", now))
            sched.call_after(5, lambda t: fired.append(("inner", t)))

        sched.call_at(10, outer)
        sched.run_until(100)
        assert fired == [("outer", 10), ("inner", 15)]

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False


class TestSunModel:
    def june_noon(self):
        return from_datetime(dt.datetime(2017, 6, 21, 11, 18))  # local solar noon

    def december_noon(self):
        return from_datetime(dt.datetime(2017, 12, 21, 11, 18))

    def test_summer_noon_elevation(self):
        # 90 - lat + decl = 90 - 63.43 + 23.44 ~ 50 degrees.
        elev = solar_elevation_deg(self.june_noon(), TRD_LAT, TRD_LON)
        assert elev == pytest.approx(50.0, abs=1.5)

    def test_winter_noon_elevation(self):
        elev = solar_elevation_deg(self.december_noon(), TRD_LAT, TRD_LON)
        assert elev == pytest.approx(3.1, abs=1.5)

    def test_midnight_is_dark_in_winter(self):
        midnight = from_datetime(dt.datetime(2017, 12, 21, 0, 0))
        assert not is_daylight(midnight, TRD_LAT, TRD_LON)

    def test_daylight_fraction_seasonality(self):
        summer = daylight_fraction(self.june_noon(), TRD_LAT)
        winter = daylight_fraction(self.december_noon(), TRD_LAT)
        assert summer > 0.8  # ~20.5 h of daylight
        assert winter < 0.25  # ~4.5 h
        assert summer + winter == pytest.approx(1.0, abs=0.08)

    def test_polar_cases(self):
        summer = from_datetime(dt.datetime(2017, 6, 21))
        winter = from_datetime(dt.datetime(2017, 12, 21))
        assert daylight_fraction(summer, 80.0) == 1.0  # midnight sun
        assert daylight_fraction(winter, 80.0) == 0.0  # polar night

    def test_sunrise_sunset_bracket_noon(self):
        result = sunrise_sunset(self.june_noon(), TRD_LAT, TRD_LON)
        assert result is not None
        rise, set_ = result
        assert rise < self.june_noon() < set_

    def test_sunrise_none_in_polar_night(self):
        winter = from_datetime(dt.datetime(2017, 12, 21))
        assert sunrise_sunset(winter, 80.0, 0.0) is None

    def test_irradiance_zero_at_night(self):
        midnight = from_datetime(dt.datetime(2017, 12, 21, 0, 0))
        assert solar_irradiance_wm2(midnight, TRD_LAT, TRD_LON) == 0.0

    def test_irradiance_positive_at_summer_noon(self):
        ghi = solar_irradiance_wm2(self.june_noon(), TRD_LAT, TRD_LON)
        assert 600.0 < ghi < 1000.0

    def test_clouds_attenuate(self):
        ts = self.june_noon()
        clear = solar_irradiance_wm2(ts, TRD_LAT, TRD_LON, cloud_cover=0.0)
        overcast = solar_irradiance_wm2(ts, TRD_LAT, TRD_LON, cloud_cover=1.0)
        assert overcast == pytest.approx(0.25 * clear, rel=1e-6)

    def test_cloud_cover_validated(self):
        with pytest.raises(ValueError):
            solar_irradiance_wm2(self.june_noon(), TRD_LAT, TRD_LON, cloud_cover=1.5)
