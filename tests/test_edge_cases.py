"""Edge-case tests across modules: boundaries the main suites skip."""

import numpy as np
import pytest

from repro.analytics import band, caqi, diurnal_profile, sub_index
from repro.dataport import Actor, ActorSystem
from repro.geo import BoundingBox, GeoPoint
from repro.lorawan import NetworkServer, airtime_s, bitrate_bps
from repro.mqtt import Broker
from repro.simclock import Scheduler, SimClock, floor_to
from repro.streams import Event, Sink, Source
from repro.tsdb import Downsample, Query, TSDB
from repro.tsdb.downsample import MAX_FILLED_BUCKETS, InvalidDownsampleSpec
from repro.viz import Chart, sparkline


class TestSchedulerEdges:
    def test_peek_skips_cancelled(self):
        sched = Scheduler(SimClock(start=0))
        h1 = sched.call_at(10, lambda now: None)
        sched.call_at(20, lambda now: None)
        h1.cancel()
        assert sched.peek() == 20

    def test_run_until_now_runs_due_events(self):
        sched = Scheduler(SimClock(start=100))
        fired = []
        sched.call_at(100, fired.append)
        sched.run_until(100)
        assert fired == [100]

    def test_handle_when_property(self):
        sched = Scheduler(SimClock(start=0))
        h = sched.call_at(55, lambda now: None)
        assert h.when == 55
        assert not h.cancelled


class TestTsdbEdges:
    def test_empty_database_queries(self):
        db = TSDB()
        assert db.metrics() == []
        assert db.last("nope") == {}
        assert db.run(Query("nope", 0, 10)).is_empty()
        assert db.delete_before(100) == 0

    def test_single_point_series(self):
        db = TSDB()
        db.put("m", 5, 1.0)
        res = db.run(Query("m", 0, 10, downsample="5m-avg"))
        assert res.single().values.tolist() == [1.0]

    def test_query_exact_boundaries(self):
        db = TSDB()
        db.put("m", 10, 1.0)
        db.put("m", 20, 2.0)
        res = db.run(Query("m", 10, 20))
        assert len(res.single()) == 2
        res = db.run(Query("m", 11, 19))
        assert res.is_empty()

    def test_filled_bucket_limit_enforced(self):
        db = TSDB()
        db.put("m", 0, 1.0)
        db.put("m", (MAX_FILLED_BUCKETS + 10) * 60, 2.0)
        with pytest.raises(InvalidDownsampleSpec):
            db.run(
                Query("m", 0, (MAX_FILLED_BUCKETS + 10) * 60,
                      downsample="1m-avg-nan")
            )

    def test_sparse_downsample_huge_span_is_fine(self):
        db = TSDB()
        db.put("m", 0, 1.0)
        db.put("m", 2**40, 2.0)
        res = db.run(Query("m", 0, 2**40, downsample="1m-avg"))
        assert len(res.single()) == 2

    def test_tag_index_narrowing_consistent_with_full_match(self):
        db = TSDB()
        for i in range(20):
            db.put("m", i, float(i), {"node": f"n{i % 4}", "city": "x"})
        narrowed = db.run(Query("m", 0, 20, tags={"node": "n1", "city": "x"}))
        assert len(narrowed.single().source_series) == 1
        assert narrowed.scanned_points == 5


class TestMqttEdges:
    def test_redeliver_without_sessions(self):
        assert Broker().redeliver() == 0

    def test_reconnect_clean_session_drops_subscriptions(self):
        broker = Broker()
        got = []
        c1 = broker.connect("c", clean_session=False)
        c1.subscribe("t", got.append)
        broker.connect("c", clean_session=True)  # wipes state
        broker.publish("t", b"x")
        assert got == []

    def test_retained_for_multiple(self):
        broker = Broker()
        broker.publish("a/1", b"x", retain=True)
        broker.publish("a/2", b"y", retain=True)
        broker.publish("b/1", b"z", retain=True)
        assert len(broker.retained_for("a/#")) == 2


class TestLorawanEdges:
    def test_zero_payload_airtime(self):
        assert airtime_s(0, 7) > 0.0

    def test_bitrate_known_value_sf7(self):
        # SF7/125k CR4/5: 5468.75 * 0.8 = 4375 bps... canonical ~5470 bps
        # at CR4/5 using sf*bw/2^sf*cr: 7*125000/128*4/5 = 5468.75.
        assert bitrate_bps(7) == pytest.approx(5468.75, rel=1e-6)

    def test_adr_unknown_device(self):
        assert NetworkServer().adr_recommendation("ghost") is None


class TestActorEdges:
    def test_stop_unknown_ref_is_noop(self):
        system = ActorSystem(Scheduler(SimClock(start=0)))

        class A(Actor):
            def receive(self, message, sender):
                pass

        ref = system.spawn(A, "a")
        system.stop(ref)
        system.stop(ref)  # second stop: no error
        assert system.actor_count() == 0

    def test_sender_passed_through(self):
        system = ActorSystem(Scheduler(SimClock(start=0)))
        seen = []

        class A(Actor):
            def receive(self, message, sender):
                seen.append(sender)

        a = system.spawn(A, "a")
        b = system.spawn(A, "b")
        a.tell("hi", sender=b)
        assert seen == [b]


class TestAqiEdges:
    def test_band_boundaries(self):
        assert band(25.0) == "very_low"
        assert band(25.0001) == "low"
        assert band(100.0) == "high"
        assert band(100.0001) == "very_high"

    def test_caqi_nan_values_skipped(self):
        result = caqi({"no2_ugm3": float("nan"), "pm10_ugm3": 30.0})
        assert result.dominant == "pm10_ugm3"

    def test_sub_index_negative_clamps(self):
        assert sub_index("no2_ugm3", -5.0) == 0.0


class TestVizEdges:
    def test_chart_single_point(self):
        chart = Chart("one")
        chart.add("a", np.array([100]), np.array([5.0]))
        assert "5.0" in chart.render_text()
        assert "<circle" in chart.render_svg()

    def test_chart_all_nan_series(self):
        chart = Chart("nan")
        chart.add("a", np.arange(5), np.full(5, np.nan))
        assert "(no data)" in chart.render_text()

    def test_chart_spark(self):
        chart = Chart("s")
        chart.add("a", np.arange(10), np.arange(10.0))
        assert len(chart.spark(10)) == 10
        assert Chart("empty").spark() == ""

    def test_sparkline_single_value(self):
        assert len(sparkline(np.array([3.0]))) == 1


class TestStreamEdges:
    def test_flush_propagates_through_chain(self):
        from repro.streams import TumblingWindow, chain

        src, win, sink = Source(), TumblingWindow(100), Sink()
        chain(src, win, sink)
        src.push(Event(10, 1.0))
        src.flush()
        assert len(sink.events) == 1

    def test_diurnal_profile_empty(self):
        profile = diurnal_profile(np.array([]), np.array([], dtype=np.int64))
        assert np.isnan(profile).all()


class TestGeoEdges:
    def test_bbox_zero_area(self):
        box = BoundingBox(1.0, 2.0, 1.0, 2.0)
        assert box.contains(GeoPoint(1.0, 2.0))
        assert box.width_m == 0.0

    def test_floor_to_negative_like_epoch(self):
        assert floor_to(0, 300) == 0
