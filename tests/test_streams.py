"""Tests for stream operators and flow graphs."""

import numpy as np
import pytest

from repro.mqtt import Broker
from repro.streams import (
    Event,
    Filter,
    FlowGraph,
    FlowGraphError,
    Map,
    Segmenter,
    Sink,
    Source,
    TumblingWindow,
    chain,
)


def events(pairs):
    return [Event(t, v) for t, v in pairs]


class TestOperators:
    def test_map(self):
        src, sink = Source(), Sink()
        chain(src, Map(lambda e: Event(e.timestamp, e.value * 2)), sink)
        src.push_many(events([(0, 1.0), (1, 2.0)]))
        assert sink.values().tolist() == [2.0, 4.0]

    def test_filter(self):
        src, sink = Source(), Sink()
        chain(src, Filter(lambda e: e.value > 1.0), sink)
        src.push_many(events([(0, 0.5), (1, 2.0), (2, 1.5)]))
        assert sink.values().tolist() == [2.0, 1.5]

    def test_counters(self):
        src = Source()
        f = Filter(lambda e: e.value > 1.0)
        sink = Sink()
        chain(src, f, sink)
        src.push_many(events([(0, 0.5), (1, 2.0)]))
        assert src.received == 2
        assert f.received == 2
        assert f.emitted == 1

    def test_fanout(self):
        src = Source()
        s1, s2 = Sink(), Sink()
        src.to(s1, s2)
        src.push(Event(0, 1.0))
        assert len(s1.events) == len(s2.events) == 1

    def test_sink_callback(self):
        got = []
        src = Source()
        src.to(Sink(callback=got.append))
        src.push(Event(5, 1.0))
        assert got[0].timestamp == 5

    def test_chain_empty_raises(self):
        with pytest.raises(ValueError):
            chain()


class TestTumblingWindow:
    def test_aggregates_per_bucket(self):
        src, sink = Source(), Sink()
        chain(src, TumblingWindow(10, np.mean), sink)
        src.push_many(events([(0, 1.0), (5, 3.0), (10, 10.0), (20, 7.0)]))
        src.flush()
        assert sink.timestamps().tolist() == [0, 10, 20]
        assert sink.values().tolist() == [2.0, 10.0, 7.0]

    def test_flush_emits_partial(self):
        src, sink = Source(), Sink()
        chain(src, TumblingWindow(10), sink)
        src.push(Event(3, 5.0))
        assert sink.events == []
        src.flush()
        assert sink.values().tolist() == [5.0]

    def test_bucket_alignment(self):
        src, sink = Source(), Sink()
        chain(src, TumblingWindow(300), sink)
        src.push_many(events([(299, 1.0), (300, 2.0)]))
        src.flush()
        assert sink.timestamps().tolist() == [0, 300]

    def test_custom_aggregate(self):
        src, sink = Source(), Sink()
        chain(src, TumblingWindow(10, np.max), sink)
        src.push_many(events([(0, 1.0), (5, 9.0), (12, 2.0)]))
        src.flush()
        assert sink.values()[0] == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TumblingWindow(0)


class TestSegmenter:
    def test_splits_on_gap(self):
        closed = []
        src = Source()
        seg = Segmenter(max_gap_s=600, on_segment=closed.append)
        sink = Sink()
        chain(src, seg, sink)
        src.push_many(events([(0, 1.0), (300, 2.0), (5000, 3.0), (5300, 4.0)]))
        src.flush()
        assert len(closed) == 2
        assert [e.value for e in closed[0]] == [1.0, 2.0]
        assert seg.segments_closed == 2

    def test_segment_ids_tagged(self):
        src, sink = Source(), Sink()
        chain(src, Segmenter(600), sink)
        src.push_many(events([(0, 1.0), (5000, 2.0)]))
        src.flush()
        assert [e.tags["segment"] for e in sink.events] == [0, 1]

    def test_no_gap_single_segment(self):
        src, sink = Source(), Sink()
        seg = Segmenter(600)
        chain(src, seg, sink)
        src.push_many(events([(i * 300, float(i)) for i in range(10)]))
        src.flush()
        assert seg.segments_closed == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Segmenter(0)


class TestFlowGraph:
    def build(self):
        g = FlowGraph("test")
        g.add("src", Source())
        g.add("double", Map(lambda e: Event(e.timestamp, e.value * 2)))
        g.add("out", Sink())
        g.connect("src", "double")
        g.connect("double", "out")
        return g

    def test_end_to_end(self):
        g = self.build()
        g.push("src", Event(0, 21.0))
        assert g.stage("out").values().tolist() == [42.0]

    def test_duplicate_stage_rejected(self):
        g = self.build()
        with pytest.raises(FlowGraphError):
            g.add("src", Source())

    def test_unknown_stage(self):
        g = self.build()
        with pytest.raises(FlowGraphError):
            g.connect("src", "nope")

    def test_cycle_rejected(self):
        g = self.build()
        with pytest.raises(FlowGraphError):
            g.connect("out", "src")
        # The failed edge must not have half-connected anything.
        g.push("src", Event(0, 1.0))
        assert len(g.stage("out").events) == 1

    def test_rewire_at_runtime(self):
        """The demo scenario: change the dependency of the data flow."""
        g = self.build()
        g.add("halve", Map(lambda e: Event(e.timestamp, e.value / 2)))
        g.add("out2", Sink())
        g.connect("halve", "out2")
        g.push("src", Event(0, 10.0))
        # Rewire: src now feeds halve instead of double.
        g.disconnect("src", "double")
        g.connect("src", "halve")
        g.push("src", Event(1, 10.0))
        assert g.stage("out").values().tolist() == [20.0]
        assert g.stage("out2").values().tolist() == [5.0]

    def test_disconnect_unknown_edge(self):
        g = self.build()
        with pytest.raises(FlowGraphError):
            g.disconnect("out", "src")

    def test_topology_introspection(self):
        g = self.build()
        assert g.roots() == ["src"]
        assert g.leaves() == ["out"]
        assert g.topological_order() == ["src", "double", "out"]
        assert g.edges() == [("double", "out"), ("src", "double")]

    def test_describe(self):
        text = self.build().describe()
        assert "src" in text
        assert "(sink)" in text

    def test_mqtt_automation(self):
        """A source bound to an MQTT topic runs with no manual pushes."""
        broker = Broker()
        g = self.build()

        def extract(message):
            ts, val = message.text().split(",")
            return Event(int(ts), float(val))

        g.bind_mqtt(broker, "data/#", "src", extract)
        broker.publish("data/x", "100,3.5")
        broker.publish("data/y", "200,4.5")
        assert g.stage("out").values().tolist() == [7.0, 9.0]

    def test_mqtt_extract_none_skips(self):
        broker = Broker()
        g = self.build()
        g.bind_mqtt(broker, "data/#", "src", lambda m: None)
        broker.publish("data/x", "whatever")
        assert g.stage("out").events == []

    def test_stage_stats(self):
        g = self.build()
        g.push("src", Event(0, 1.0))
        stats = g.stage_stats()
        assert stats["src"]["received"] == 1
        assert stats["out"]["received"] == 1
